#include "filter/event_dp.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ujoin {
namespace {

// Brute-force Poisson-binomial: enumerate all 2^m outcomes.
std::vector<double> BruteForceDistribution(const std::vector<double>& alphas) {
  const size_t m = alphas.size();
  std::vector<double> dist(m + 1, 0.0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    double p = 1.0;
    int count = 0;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (uint64_t{1} << i)) {
        p *= alphas[i];
        ++count;
      } else {
        p *= 1.0 - alphas[i];
      }
    }
    dist[static_cast<size_t>(count)] += p;
  }
  return dist;
}

TEST(EventCountDistributionTest, EmptyEventsAreCertainZero) {
  const std::vector<double> dist = EventCountDistribution({});
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
}

TEST(EventCountDistributionTest, SingleEvent) {
  const std::vector<double> alphas = {0.3};
  const std::vector<double> dist = EventCountDistribution(alphas);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[0], 0.7);
  EXPECT_DOUBLE_EQ(dist[1], 0.3);
}

TEST(EventCountDistributionTest, MatchesBruteForceEnumeration) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const int m = static_cast<int>(rng.UniformInt(1, 10));
    std::vector<double> alphas;
    for (int i = 0; i < m; ++i) alphas.push_back(rng.UniformDouble());
    const std::vector<double> dist = EventCountDistribution(alphas);
    const std::vector<double> brute = BruteForceDistribution(alphas);
    ASSERT_EQ(dist.size(), brute.size());
    double sum = 0.0;
    for (size_t y = 0; y < dist.size(); ++y) {
      EXPECT_NEAR(dist[y], brute[y], 1e-12);
      sum += dist[y];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ProbAtLeastEventsTest, BoundaryCounts) {
  const std::vector<double> alphas = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(ProbAtLeastEvents(alphas, 0), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeastEvents(alphas, -3), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeastEvents(alphas, 4), 0.0);
  EXPECT_NEAR(ProbAtLeastEvents(alphas, 3), 0.125, 1e-12);
}

TEST(ProbAtLeastEventsTest, AtLeastOneMatchesClosedForm) {
  // Lemmas 3/5: for m = k+1 the bound is 1 - Π(1 - α_x).
  Rng rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const int m = static_cast<int>(rng.UniformInt(1, 12));
    std::vector<double> alphas;
    double none = 1.0;
    for (int i = 0; i < m; ++i) {
      alphas.push_back(rng.UniformDouble());
      none *= 1.0 - alphas.back();
    }
    EXPECT_NEAR(ProbAtLeastEvents(alphas, 1), 1.0 - none, 1e-12);
  }
}

TEST(ProbAtLeastEventsTest, PaperExampleBounds) {
  // Table 1 narrative: S3 has α = (1, 0, 0.2), m = 3, k = 1 -> bound 0.2;
  // S4 has α = (0.8, 0.5, 0) -> bound 0.4.
  const std::vector<double> s3 = {1.0, 0.0, 0.2};
  EXPECT_NEAR(ProbAtLeastEvents(s3, 2), 0.2, 1e-12);
  const std::vector<double> s4 = {0.8, 0.5, 0.0};
  EXPECT_NEAR(ProbAtLeastEvents(s4, 2), 0.4, 1e-12);
}

TEST(ProbAtLeastEventsTest, MonotoneInAlphas) {
  Rng rng(79);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = static_cast<int>(rng.UniformInt(2, 8));
    std::vector<double> lo_alphas, hi_alphas;
    for (int i = 0; i < m; ++i) {
      const double a = rng.UniformDouble();
      lo_alphas.push_back(a * 0.5);
      hi_alphas.push_back(a);
    }
    for (int need = 0; need <= m; ++need) {
      EXPECT_LE(ProbAtLeastEvents(lo_alphas, need),
                ProbAtLeastEvents(hi_alphas, need) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace ujoin
