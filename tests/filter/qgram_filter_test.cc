#include "filter/qgram_filter.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/edit_distance.h"
#include "util/rng.h"

namespace ujoin {
namespace {

// The full Table 1 setup: r = GGATCC, m = 3, q = 2, k = 1, τ = 0.25.
class Table1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dna_ = Alphabet::Dna();
    r_ = UncertainString::FromDeterministic("GGATCC");
    auto parse = [&](const char* text) {
      Result<UncertainString> s = UncertainString::Parse(text, dna_);
      UJOIN_CHECK(s.ok());
      return std::move(s).value();
    };
    s1_ = parse("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC");
    s2_ = parse("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C");
    s3_ = parse("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C");
    s4_ = parse("{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT");
    options_.k = 1;
    options_.q = 2;
  }

  Alphabet dna_ = Alphabet::Dna();
  UncertainString r_, s1_, s2_, s3_, s4_;
  QGramOptions options_;
  static constexpr double kTau = 0.25;
};

TEST_F(Table1Test, S1HasNoMatchingSegments) {
  Result<QGramFilterOutcome> out = EvaluateQGramFilter(r_, s1_, options_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->m, 3);
  EXPECT_EQ(out->matched_segments, 0);
  EXPECT_TRUE(out->support_pruned);
  EXPECT_FALSE(out->Survives(kTau));
}

TEST_F(Table1Test, S2HasOneMatchedSegmentAndIsRejected) {
  // S2's second segment instance GG occurs in r, but only outside the
  // position-aware window, so only the third segment matches.
  Result<QGramFilterOutcome> out = EvaluateQGramFilter(r_, s2_, options_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->matched_segments, 1);
  EXPECT_TRUE(out->support_pruned);  // needs m - k = 2 matches
  EXPECT_NEAR(out->alphas[0], 0.0, 1e-12);
  EXPECT_NEAR(out->alphas[1], 0.0, 1e-12);
  EXPECT_NEAR(out->alphas[2], 0.8, 1e-12);  // TC (0.5) + CC (0.3)
  EXPECT_FALSE(out->Survives(kTau));
}

TEST_F(Table1Test, S3AlphasMatchPaperAndBoundRejects) {
  Result<QGramFilterOutcome> out = EvaluateQGramFilter(r_, s3_, options_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->matched_segments, 2);
  EXPECT_FALSE(out->support_pruned);
  ASSERT_EQ(out->alphas.size(), 3u);
  EXPECT_NEAR(out->alphas[0], 1.0, 1e-12);  // GA (0.8) + GG (0.2)
  EXPECT_NEAR(out->alphas[1], 0.0, 1e-12);
  EXPECT_NEAR(out->alphas[2], 0.2, 1e-12);  // CC (0.1) + TC (0.1)
  EXPECT_NEAR(out->upper_bound, 0.2, 1e-12);
  EXPECT_FALSE(out->Survives(kTau));  // 0.2 < τ = 0.25
}

TEST_F(Table1Test, S4SurvivesWithBoundPointFour) {
  Result<QGramFilterOutcome> out = EvaluateQGramFilter(r_, s4_, options_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->matched_segments, 2);
  ASSERT_EQ(out->alphas.size(), 3u);
  EXPECT_NEAR(out->alphas[0], 0.8, 1e-12);  // GG
  EXPECT_NEAR(out->alphas[1], 0.5, 1e-12);  // AT
  EXPECT_NEAR(out->alphas[2], 0.0, 1e-12);
  EXPECT_NEAR(out->upper_bound, 0.4, 1e-12);
  EXPECT_TRUE(out->Survives(kTau));
}

TEST(QGramFilterTest, DeterministicPairsReduceToClassicFiltering) {
  // For deterministic strings the filter must keep any pair within the edit
  // threshold (completeness) — exhaustively over random similar pairs.
  Alphabet names = Alphabet::Names();
  Rng rng(91);
  QGramOptions options;
  for (int trial = 0; trial < 500; ++trial) {
    options.k = static_cast<int>(rng.UniformInt(1, 3));
    options.q = static_cast<int>(rng.UniformInt(2, 4));
    const std::string s = testing::RandomString(
        names, static_cast<int>(rng.UniformInt(options.k + 1, 14)), rng);
    const std::string r = testing::RandomEdits(s, names, options.k, rng);
    if (r.empty()) continue;
    if (EditDistance(r, s) > options.k) continue;
    Result<QGramFilterOutcome> out =
        EvaluateQGramFilter(UncertainString::FromDeterministic(r),
                            UncertainString::FromDeterministic(s), options);
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out->support_pruned) << "r=" << r << " s=" << s;
    EXPECT_NEAR(out->upper_bound, 1.0, 1e-9) << "r=" << r << " s=" << s;
  }
}

TEST(QGramFilterTest, SupportPruningIsExactlySound) {
  // Lemma 4 is an exact necessary condition: the support-level prune must
  // never fire on a pair with Pr(ed(R,S) <= k) > 0 — strictly, all trials.
  Alphabet dna = Alphabet::Dna();
  Rng rng(92);
  int positive_pairs = 0;
  for (int trial = 0; trial < 800; ++trial) {
    QGramOptions options;
    options.k = static_cast<int>(rng.UniformInt(1, 2));
    options.q = 2;
    testing::RandomStringOptions gen;
    gen.min_length = options.k + 1;
    gen.max_length = 8;
    gen.theta = 0.35;
    gen.max_alternatives = 2;
    const UncertainString s = testing::RandomUncertainString(dna, gen, rng);
    testing::RandomStringOptions gen_r = gen;
    gen_r.min_length = std::max(1, s.length() - options.k);
    gen_r.max_length = s.length() + options.k;
    const UncertainString r = testing::RandomUncertainString(dna, gen_r, rng);
    const double truth = testing::BruteForceMatchProbability(r, s, options.k);
    if (truth <= 0.0) continue;
    ++positive_pairs;
    Result<QGramFilterOutcome> out = EvaluateQGramFilter(r, s, options);
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out->support_pruned)
        << "R=" << r.ToString() << " S=" << s.ToString() << " k=" << options.k
        << " truth=" << truth;
    EXPECT_GT(out->upper_bound, 0.0);
  }
  EXPECT_GT(positive_pairs, 100);
}

TEST(QGramFilterTest, ProbabilisticBoundIsMostlyAboveTruth) {
  // Theorem 2 treats the segment-match events E_x as independent.  That is
  // exact with respect to S's randomness (segments are disjoint) but not
  // with respect to R's (selection windows overlap in R), so on adversarial
  // uncertain probes the computed "upper bound" can dip below the exact
  // probability.  This test pins down the empirical behaviour the library
  // documents: violations are rare and modest.  Users needing a hard
  // guarantee disable probabilistic pruning (JoinOptions).
  Alphabet dna = Alphabet::Dna();
  Rng rng(93);
  int positive_pairs = 0;
  int violations = 0;
  double worst_shortfall = 0.0;
  for (int trial = 0; trial < 1500; ++trial) {
    QGramOptions options;
    options.k = static_cast<int>(rng.UniformInt(1, 2));
    options.q = 2;
    testing::RandomStringOptions gen;
    gen.min_length = options.k + 1;
    gen.max_length = 8;
    gen.theta = 0.35;
    gen.max_alternatives = 2;
    const UncertainString s = testing::RandomUncertainString(dna, gen, rng);
    testing::RandomStringOptions gen_r = gen;
    gen_r.min_length = std::max(1, s.length() - options.k);
    gen_r.max_length = s.length() + options.k;
    const UncertainString r = testing::RandomUncertainString(dna, gen_r, rng);
    const double truth = testing::BruteForceMatchProbability(r, s, options.k);
    if (truth <= 0.0) continue;
    ++positive_pairs;
    Result<QGramFilterOutcome> out = EvaluateQGramFilter(r, s, options);
    ASSERT_TRUE(out.ok());
    if (out->upper_bound < truth - 1e-9) {
      ++violations;
      worst_shortfall = std::max(worst_shortfall, truth - out->upper_bound);
    }
  }
  EXPECT_GT(positive_pairs, 200);
  // Empirically < 10% of positive pairs on this adversarial workload; the
  // realistic datasets of Section 7 sit far below (see join tests).
  EXPECT_LT(violations, positive_pairs / 10)
      << "violations=" << violations << " of " << positive_pairs;
  EXPECT_LT(worst_shortfall, 0.5);
}

TEST(QGramFilterTest, EmptyCandidateString) {
  QGramOptions options;
  options.k = 2;
  const UncertainString r = UncertainString::FromDeterministic("AC");
  Result<QGramFilterOutcome> out =
      EvaluateQGramFilter(r, UncertainString(), options);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Survives(0.5));  // ed = 2 <= k with certainty
  const UncertainString r2 = UncertainString::FromDeterministic("ACGTA");
  Result<QGramFilterOutcome> out2 =
      EvaluateQGramFilter(r2, UncertainString(), options);
  ASSERT_TRUE(out2.ok());
  EXPECT_FALSE(out2->Survives(0.0));  // ed = 5 > k
}

TEST(QGramFilterTest, SegmentMatchProbabilityClampsToOne) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> seg = UncertainString::Parse("{(A,0.5),(C,0.5)}", dna);
  ASSERT_TRUE(seg.ok());
  const std::vector<ProbeSubstring> probes = {{"A", 1.0}, {"C", 1.0}};
  EXPECT_NEAR(SegmentMatchProbability(probes, *seg), 1.0, 1e-12);
}

}  // namespace
}  // namespace ujoin
