#include "index/segment_index.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "filter/qgram_filter.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

TEST(LengthBucketIndexTest, PostingListsHoldInstanceProbabilities) {
  Alphabet dna = Alphabet::Dna();
  LengthBucketIndex bucket(6, /*k=*/1, /*q=*/2);
  ASSERT_EQ(bucket.num_segments(), 3);
  // S2 from Table 1.
  ASSERT_TRUE(bucket
                  .Insert(0, Parse("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),"
                                   "(T,0.5)}C", dna))
                  .ok());
  const FlatPostings::ListView aa = bucket.Find(0, "AA");
  ASSERT_EQ(aa.size(), 1u);
  EXPECT_EQ(aa[0].id, 0u);
  EXPECT_DOUBLE_EQ(aa[0].prob, 1.0);
  const FlatPostings::ListView gg = bucket.Find(1, "GG");
  ASSERT_FALSE(gg.empty());
  EXPECT_DOUBLE_EQ(gg[0].prob, 0.9);
  const FlatPostings::ListView tc = bucket.Find(2, "TC");
  ASSERT_FALSE(tc.empty());
  EXPECT_DOUBLE_EQ(tc[0].prob, 0.5);
  EXPECT_TRUE(bucket.Find(2, "AC").empty());
}

TEST(LengthBucketIndexTest, RejectsWrongLengthAndOutOfOrderIds) {
  Alphabet dna = Alphabet::Dna();
  LengthBucketIndex bucket(6, 1, 2);
  EXPECT_FALSE(bucket.Insert(0, Parse("ACG", dna)).ok());
  ASSERT_TRUE(bucket.Insert(5, Parse("ACGTAC", dna)).ok());
  Status out_of_order = bucket.Insert(3, Parse("ACGTAC", dna));
  EXPECT_EQ(out_of_order.code(), StatusCode::kFailedPrecondition);
}

TEST(LengthBucketIndexTest, MemoryGrowsWithInsertions) {
  Alphabet dna = Alphabet::Dna();
  LengthBucketIndex bucket(6, 1, 2);
  const size_t empty = bucket.MemoryUsage();
  ASSERT_TRUE(bucket.Insert(0, Parse("ACGTAC", dna)).ok());
  const size_t one = bucket.MemoryUsage();
  ASSERT_TRUE(
      bucket.Insert(1, Parse("A{(C,0.5),(G,0.5)}GTAC", dna)).ok());
  const size_t two = bucket.MemoryUsage();
  EXPECT_GT(one, empty);
  EXPECT_GT(two, one);
}

// Consistency: querying the index must reproduce the pair-at-a-time q-gram
// filter (same candidates, same Theorem 2 bounds) on random collections.
TEST(InvertedSegmentIndexTest, QueryMatchesPairwiseFilter) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(121);
  for (int round = 0; round < 20; ++round) {
    const int k = static_cast<int>(rng.UniformInt(1, 2));
    const int q = static_cast<int>(rng.UniformInt(2, 3));
    const double tau = rng.UniformDouble() * 0.3;
    const int length = static_cast<int>(rng.UniformInt(k + 2, 9));

    testing::RandomStringOptions opt;
    opt.min_length = opt.max_length = length;
    opt.theta = 0.3;
    opt.max_alternatives = 2;
    std::vector<UncertainString> collection;
    for (int i = 0; i < 25; ++i) {
      collection.push_back(testing::RandomUncertainString(dna, opt, rng));
    }
    InvertedSegmentIndex index(k, q);
    for (uint32_t id = 0; id < collection.size(); ++id) {
      ASSERT_TRUE(index.Insert(id, collection[id]).ok());
    }
    testing::RandomStringOptions probe_opt = opt;
    probe_opt.min_length = std::max(1, length - k);
    probe_opt.max_length = length + k;
    const UncertainString r =
        testing::RandomUncertainString(dna, probe_opt, rng);

    const std::vector<IndexCandidate> candidates =
        index.Query(r, length, tau);
    std::map<uint32_t, IndexCandidate> by_id;
    for (const IndexCandidate& c : candidates) by_id[c.id] = c;

    QGramOptions options;
    options.k = k;
    options.q = q;
    for (uint32_t id = 0; id < collection.size(); ++id) {
      Result<QGramFilterOutcome> pairwise =
          EvaluateQGramFilter(r, collection[id], options);
      ASSERT_TRUE(pairwise.ok());
      const bool expected = pairwise->Survives(tau);
      EXPECT_EQ(by_id.count(id) > 0, expected)
          << "id=" << id << " R=" << r.ToString()
          << " S=" << collection[id].ToString() << " k=" << k << " q=" << q
          << " tau=" << tau << " bound=" << pairwise->upper_bound;
      if (expected && by_id.count(id)) {
        EXPECT_NEAR(by_id[id].upper_bound, pairwise->upper_bound, 1e-9);
        EXPECT_EQ(by_id[id].matched_segments, pairwise->matched_segments);
      }
    }
  }
}

TEST(InvertedSegmentIndexTest, ShortStringsBypassPruning) {
  Alphabet dna = Alphabet::Dna();
  // Length 2 with k = 3: m = 2 <= k, so every indexed string is a candidate.
  InvertedSegmentIndex index(3, 3);
  ASSERT_TRUE(index.Insert(0, Parse("AC", dna)).ok());
  ASSERT_TRUE(index.Insert(1, Parse("GT", dna)).ok());
  const std::vector<IndexCandidate> candidates =
      index.Query(Parse("TTT", dna), 2, 0.5);
  EXPECT_EQ(candidates.size(), 2u);
  for (const IndexCandidate& c : candidates) {
    EXPECT_DOUBLE_EQ(c.upper_bound, 1.0);
  }
}

TEST(InvertedSegmentIndexTest, QueryOnUnknownLengthIsEmpty) {
  InvertedSegmentIndex index(2, 3);
  EXPECT_TRUE(index
                  .Query(UncertainString::FromDeterministic("ACGTACGT"), 8,
                         0.1)
                  .empty());
}

TEST(InvertedSegmentIndexTest, StatsAreAccumulated) {
  Alphabet dna = Alphabet::Dna();
  InvertedSegmentIndex index(1, 2);
  ASSERT_TRUE(index.Insert(0, Parse("ACGTAC", dna)).ok());
  ASSERT_TRUE(index.Insert(1, Parse("ACGTAG", dna)).ok());
  IndexQueryStats stats;
  index.Query(Parse("ACGTAC", dna), 6, 0.1, &stats);
  EXPECT_GT(stats.lists_scanned, 0);
  EXPECT_GT(stats.postings_scanned, 0);
  EXPECT_GT(stats.ids_touched, 0);
  EXPECT_EQ(stats.candidates + stats.support_pruned + stats.probability_pruned,
            stats.ids_touched);
}

TEST(InvertedSegmentIndexTest, WildcardSegmentsStayConservative) {
  Alphabet dna = Alphabet::Dna();
  ProbeSetOptions probe;
  probe.max_instances_per_window = 2;  // force segment instance blow-up
  InvertedSegmentIndex index(1, 3, probe);
  // Each segment of length 3 with two uncertain positions has 4 instances,
  // beyond the cap of 2, so all segments are indexed as wildcards.
  const UncertainString s = Parse(
      "{(A,0.5),(C,0.5)}{(A,0.5),(G,0.5)}C{(A,0.5),(C,0.5)}{(A,0.5),(G,0.5)}T",
      dna);
  ASSERT_TRUE(index.Insert(0, s).ok());
  // The probe must still see string 0 as a candidate (alpha treated as 1).
  const std::vector<IndexCandidate> candidates =
      index.Query(Parse("AACAAT", dna), 6, 0.9);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 0u);
  EXPECT_DOUBLE_EQ(candidates[0].upper_bound, 1.0);
}

TEST(InvertedSegmentIndexTest, MemoryAccountsAllBuckets) {
  Alphabet dna = Alphabet::Dna();
  InvertedSegmentIndex index(1, 2);
  EXPECT_EQ(index.MemoryUsage(), 0u);
  ASSERT_TRUE(index.Insert(0, Parse("ACGTAC", dna)).ok());
  ASSERT_TRUE(index.Insert(1, Parse("ACGTACG", dna)).ok());
  EXPECT_GT(index.MemoryUsage(), 0u);
  EXPECT_NE(index.bucket(6), nullptr);
  EXPECT_NE(index.bucket(7), nullptr);
  EXPECT_EQ(index.bucket(5), nullptr);
  EXPECT_EQ(index.MemoryUsage(),
            index.bucket(6)->MemoryUsage() + index.bucket(7)->MemoryUsage());
}

}  // namespace
}  // namespace ujoin
