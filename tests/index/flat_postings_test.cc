#include "index/flat_postings.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ujoin {
namespace {

// Every key collides: exercises the open-addressing probe chain and the
// memcmp tail comparison that disambiguates equal fingerprints.
uint64_t ConstantFingerprint(const void* /*data*/, size_t /*len*/) {
  return 0x1234;
}

std::vector<Posting> Materialize(FlatPostings::ListView view) {
  std::vector<Posting> out;
  for (size_t i = 0; i < view.size(); ++i) out.push_back(view[i]);
  return out;
}

TEST(FlatPostingsTest, AddAndFindBeforeFreeze) {
  FlatPostings lists(2);
  lists.Add("AB", Posting{1, 0.5});
  lists.Add("CD", Posting{1, 0.5});
  lists.Add("AB", Posting{3, 0.25});

  const FlatPostings::ListView ab = lists.Find("AB");
  ASSERT_EQ(ab.size(), 2u);
  EXPECT_EQ(ab[0].id, 1u);
  EXPECT_DOUBLE_EQ(ab[0].prob, 0.5);
  EXPECT_EQ(ab[1].id, 3u);
  EXPECT_DOUBLE_EQ(ab[1].prob, 0.25);
  EXPECT_EQ(lists.Find("CD").size(), 1u);
  EXPECT_TRUE(lists.Find("ZZ").empty());
  EXPECT_EQ(lists.num_keys(), 2u);
  EXPECT_EQ(lists.num_postings(), 3);
  EXPECT_FALSE(lists.frozen());
}

TEST(FlatPostingsTest, WrongLengthKeyIsAbsent) {
  FlatPostings lists(3);
  lists.Add("ABC", Posting{0, 1.0});
  EXPECT_TRUE(lists.Find("AB").empty());
  EXPECT_TRUE(lists.Find("ABCD").empty());
  EXPECT_TRUE(lists.Find("").empty());
}

TEST(FlatPostingsTest, FreezePreservesListsAndOrder) {
  FlatPostings lists(2);
  lists.Add("BB", Posting{0, 0.1});
  lists.Add("AA", Posting{1, 0.2});
  lists.Add("BB", Posting{2, 0.3});
  lists.Freeze();
  EXPECT_TRUE(lists.frozen());

  const FlatPostings::ListView bb = lists.Find("BB");
  ASSERT_EQ(bb.size(), 2u);
  EXPECT_TRUE(bb.delta.empty());  // everything packed into the arena
  EXPECT_EQ(bb[0].id, 0u);
  EXPECT_EQ(bb[1].id, 2u);

  // Adds after the freeze land in the delta extent, after the arena extent.
  lists.Add("BB", Posting{5, 0.4});
  const FlatPostings::ListView grown = lists.Find("BB");
  ASSERT_EQ(grown.size(), 3u);
  EXPECT_EQ(grown.base.size(), 2u);
  EXPECT_EQ(grown.delta.size(), 1u);
  EXPECT_EQ(grown[2].id, 5u);

  // Re-freezing merges base and delta back into one extent.
  lists.Freeze();
  const FlatPostings::ListView refrozen = lists.Find("BB");
  EXPECT_EQ(refrozen.base.size(), 3u);
  EXPECT_TRUE(refrozen.delta.empty());
  EXPECT_EQ(lists.num_postings(), 4);
}

TEST(FlatPostingsTest, ForEachSortedVisitsKeysInAscendingOrder) {
  FlatPostings lists(2);
  for (const char* key : {"CA", "AB", "ZZ", "AA", "MM"}) {
    lists.Add(key, Posting{0, 1.0});
  }
  std::vector<std::string> seen;
  lists.ForEachSorted([&](std::string_view key, FlatPostings::ListView view) {
    seen.emplace_back(key);
    EXPECT_EQ(view.size(), 1u);
  });
  std::vector<std::string> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(seen, sorted);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(FlatPostingsTest, ForcedFingerprintCollisionsStillResolve) {
  FlatPostings lists(3, &ConstantFingerprint);
  Rng rng(7);
  std::vector<std::string> keys;
  for (char a = 'A'; a <= 'F'; ++a) {
    for (char b = 'A'; b <= 'F'; ++b) {
      for (char c = 'A'; c <= 'C'; ++c) {
        keys.push_back(std::string{a, b, c});
      }
    }
  }
  for (uint32_t id = 0; id < keys.size(); ++id) {
    lists.Add(keys[id], Posting{id, 1.0 / (id + 1.0)});
  }
  EXPECT_EQ(lists.num_keys(), keys.size());
  for (uint32_t id = 0; id < keys.size(); ++id) {
    const FlatPostings::ListView view = lists.Find(keys[id]);
    ASSERT_EQ(view.size(), 1u) << keys[id];
    EXPECT_EQ(view[0].id, id);
  }
  EXPECT_TRUE(lists.Find("zzz").empty());

  // Freeze must keep every colliding key addressable.
  lists.Freeze();
  for (uint32_t id = 0; id < keys.size(); ++id) {
    const FlatPostings::ListView view = lists.Find(keys[id]);
    ASSERT_EQ(view.size(), 1u);
    EXPECT_EQ(view[0].id, id);
  }
}

TEST(FlatPostingsTest, MemoryBytesDependsOnContentNotInsertionOrder) {
  std::vector<std::pair<std::string, Posting>> adds;
  Rng rng(42);
  for (uint32_t id = 0; id < 200; ++id) {
    std::string key(4, 'A');
    for (char& c : key) {
      c = static_cast<char>('A' + rng.Uniform(8));
    }
    adds.emplace_back(key, Posting{id, rng.UniformDouble()});
  }

  FlatPostings forward(4);
  for (const auto& [key, posting] : adds) forward.Add(key, posting);

  // Same content accumulated key-major (the order deserialization uses).
  std::vector<std::string> distinct;
  for (const auto& [key, posting] : adds) distinct.push_back(key);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  FlatPostings grouped(4);
  for (const std::string& key : distinct) {
    for (const auto& [k, posting] : adds) {
      if (k == key) grouped.Add(k, posting);
    }
  }

  EXPECT_EQ(forward.num_keys(), grouped.num_keys());
  EXPECT_EQ(forward.num_postings(), grouped.num_postings());
  EXPECT_EQ(forward.MemoryBytes(), grouped.MemoryBytes());
  forward.Freeze();
  EXPECT_EQ(forward.MemoryBytes(), grouped.MemoryBytes());

  // And the lists themselves agree key by key.
  for (const std::string& key : distinct) {
    const std::vector<Posting> a = Materialize(forward.Find(key));
    const std::vector<Posting> b = Materialize(grouped.Find(key));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].prob, b[i].prob);
    }
  }
}

TEST(FlatPostingsTest, GrowsThroughManyRehashes) {
  FlatPostings lists(8);
  Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    std::string key(8, 'A');
    for (char& c : key) c = static_cast<char>('A' + rng.Uniform(26));
    keys.push_back(key);
    lists.Add(key, Posting{static_cast<uint32_t>(i), 0.5});
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(lists.Find(keys[static_cast<size_t>(i)]).empty());
  }
}

}  // namespace
}  // namespace ujoin
