// Tests for the frozen index layout: QueryWorkspace reuse must be
// invisible in the results, heap and linear merges must agree bit for bit,
// and the steady-state probe path must not touch the heap allocator.

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "index/segment_index.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs_macros.h"
#include "obs/query_log.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation hook.  Counting is off except inside CountAllocations
// scopes, so gtest's own bookkeeping does not pollute the counter.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<size_t> g_allocation_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t alignment) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::aligned_alloc(alignment, ((size + alignment - 1) / alignment) *
                                              alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ujoin {
namespace {

class CountAllocations {
 public:
  CountAllocations() {
    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
  }
  ~CountAllocations() {
    g_count_allocations.store(false, std::memory_order_relaxed);
  }
  size_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed);
  }
};

std::vector<IndexCandidate> Copy(std::span<const IndexCandidate> found) {
  return std::vector<IndexCandidate>(found.begin(), found.end());
}

void ExpectSameCandidates(const std::vector<IndexCandidate>& a,
                          const std::vector<IndexCandidate>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " i=" << i;
    EXPECT_EQ(a[i].matched_segments, b[i].matched_segments)
        << what << " i=" << i;
    // Bit-identical, not merely close: the frozen layout and the workspace
    // must not perturb the α arithmetic in any way.
    EXPECT_EQ(a[i].upper_bound, b[i].upper_bound) << what << " i=" << i;
  }
}

// Property: a workspace that has served many earlier queries returns exactly
// what a fresh workspace returns, and both match the legacy allocating
// Query overload.
TEST(FrozenIndexTest, WorkspaceReuseMatchesFreshWorkspace) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(2026);
  for (int round = 0; round < 10; ++round) {
    const int k = static_cast<int>(rng.UniformInt(1, 2));
    const int q = static_cast<int>(rng.UniformInt(2, 3));
    const int length = static_cast<int>(rng.UniformInt(k + 2, 10));

    testing::RandomStringOptions opt;
    opt.min_length = opt.max_length = length;
    opt.theta = 0.3;
    opt.max_alternatives = 2;
    InvertedSegmentIndex index(k, q);
    for (uint32_t id = 0; id < 30; ++id) {
      ASSERT_TRUE(
          index.Insert(id, testing::RandomUncertainString(dna, opt, rng)).ok());
    }
    index.Freeze();

    testing::RandomStringOptions probe_opt = opt;
    probe_opt.min_length = std::max(1, length - k);
    probe_opt.max_length = length + k;

    QueryWorkspace reused;
    for (int query = 0; query < 15; ++query) {
      const UncertainString r =
          testing::RandomUncertainString(dna, probe_opt, rng);
      const double tau = rng.UniformDouble() * 0.4;
      const uint32_t id_limit = rng.Bernoulli(0.3)
                                    ? static_cast<uint32_t>(rng.Uniform(30))
                                    : UINT32_MAX;

      const std::vector<IndexCandidate> with_reuse =
          Copy(index.Query(r, length, tau, &reused, nullptr, id_limit));
      QueryWorkspace fresh;
      const std::vector<IndexCandidate> with_fresh =
          Copy(index.Query(r, length, tau, &fresh, nullptr, id_limit));
      ExpectSameCandidates(with_reuse, with_fresh, "reused vs fresh");
      const std::vector<IndexCandidate> legacy =
          index.Query(r, length, tau, nullptr, id_limit);
      ExpectSameCandidates(with_reuse, legacy, "workspace vs legacy");
    }
  }
}

// The heap merge (threshold 0: always heap) and the linear min-scan
// (huge threshold: never heap) must produce bit-identical candidates.
TEST(FrozenIndexTest, HeapAndLinearMergesAgree) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(7031);
  for (int round = 0; round < 10; ++round) {
    const int k = static_cast<int>(rng.UniformInt(1, 3));
    const int q = static_cast<int>(rng.UniformInt(2, 3));
    const int length = static_cast<int>(rng.UniformInt(k + 2, 11));

    testing::RandomStringOptions opt;
    opt.min_length = opt.max_length = length;
    opt.theta = 0.4;
    opt.max_alternatives = 3;
    InvertedSegmentIndex index(k, q);
    for (uint32_t id = 0; id < 40; ++id) {
      ASSERT_TRUE(
          index.Insert(id, testing::RandomUncertainString(dna, opt, rng)).ok());
    }
    // Deliberately not frozen for half the rounds, so the heap also merges
    // base + delta extent pairs.
    if (round % 2 == 0) index.Freeze();

    testing::RandomStringOptions probe_opt = opt;
    probe_opt.min_length = std::max(1, length - k);
    probe_opt.max_length = length + k;
    for (int query = 0; query < 10; ++query) {
      const UncertainString r =
          testing::RandomUncertainString(dna, probe_opt, rng);
      const double tau = rng.UniformDouble() * 0.4;

      QueryWorkspace always_heap;
      always_heap.heap_merge_threshold = 0;
      QueryWorkspace never_heap;
      never_heap.heap_merge_threshold = 1 << 20;
      QueryWorkspace standard;

      const std::vector<IndexCandidate> heap_result =
          Copy(index.Query(r, length, tau, &always_heap));
      const std::vector<IndexCandidate> linear_result =
          Copy(index.Query(r, length, tau, &never_heap));
      const std::vector<IndexCandidate> default_result =
          Copy(index.Query(r, length, tau, &standard));
      ExpectSameCandidates(heap_result, linear_result, "heap vs linear");
      ExpectSameCandidates(heap_result, default_result, "heap vs default");
    }
  }
}

// Acceptance gate: once the workspace is warm, repeated queries through a
// frozen index perform zero heap allocations.
TEST(FrozenIndexTest, SteadyStateQueryDoesNotAllocate) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(99);
  const int k = 1;
  const int q = 2;
  const int length = 9;

  testing::RandomStringOptions opt;
  opt.min_length = opt.max_length = length;
  opt.theta = 0.3;
  opt.max_alternatives = 2;
  InvertedSegmentIndex index(k, q);
  for (uint32_t id = 0; id < 60; ++id) {
    ASSERT_TRUE(
        index.Insert(id, testing::RandomUncertainString(dna, opt, rng)).ok());
  }
  index.Freeze();

  const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
  QueryWorkspace workspace;
  IndexQueryStats stats;
  // Warm-up: grows every workspace buffer to its steady-state size.
  size_t warm_size = index.Query(r, length, 0.01, &workspace, &stats).size();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(index.Query(r, length, 0.01, &workspace, &stats).size(),
              warm_size);
  }

  size_t allocations;
  size_t counted_size;
  {
    CountAllocations counter;
    counted_size = index.Query(r, length, 0.01, &workspace, &stats).size();
    allocations = counter.count();
  }
  EXPECT_EQ(counted_size, warm_size);
  EXPECT_EQ(allocations, 0u)
      << "steady-state Query must not allocate; got " << allocations
      << " allocations";

  // Same property with the heap merges forced on.
  workspace.heap_merge_threshold = 0;
  warm_size = index.Query(r, length, 0.01, &workspace, &stats).size();
  {
    CountAllocations counter;
    counted_size = index.Query(r, length, 0.01, &workspace, &stats).size();
    allocations = counter.count();
  }
  EXPECT_EQ(counted_size, warm_size);
  EXPECT_EQ(allocations, 0u);

  // Same property with metrics recording on: the obs::Recorder is a flat
  // value type with inline storage, so attaching it to the workspace keeps
  // the probe path allocation-free — and must not change the candidates.
  workspace.heap_merge_threshold = QueryWorkspace().heap_merge_threshold;
  const std::vector<IndexCandidate> unobserved =
      Copy(index.Query(r, length, 0.01, &workspace, &stats));
  obs::Recorder recorder;
  workspace.obs = &recorder;
  warm_size = index.Query(r, length, 0.01, &workspace, &stats).size();
  {
    CountAllocations counter;
    counted_size = index.Query(r, length, 0.01, &workspace, &stats).size();
    allocations = counter.count();
  }
  EXPECT_EQ(counted_size, warm_size);
  EXPECT_EQ(allocations, 0u)
      << "recording into obs::Recorder must not allocate";
  const std::vector<IndexCandidate> observed =
      Copy(index.Query(r, length, 0.01, &workspace, &stats));
  workspace.obs = nullptr;
  ExpectSameCandidates(unobserved, observed, "recording on vs off");
#ifndef UJOIN_OBS_DISABLED
  EXPECT_GT(recorder.hist(obs::Hist::kMergedListLength).count(), 0);
#endif

  // Same property for the query-log path the serve layer runs per request:
  // building a record from the recorder and buffering it are flat copies
  // into pre-reserved storage.
  obs::QueryLogBuffer log_buffer;
  {
    CountAllocations counter;
    obs::QueryLogRecord record = obs::MakeQueryLogRecord(
        recorder, /*connection=*/1, /*seq=*/2, length, /*hits=*/3,
        /*error=*/false);
    log_buffer.Add(record);
    allocations = counter.count();
  }
  EXPECT_EQ(allocations, 0u)
      << "building and buffering a query-log record must not allocate";
  EXPECT_EQ(log_buffer.size(), 1u);

  // Same property with the always-on flight recorder live: a query's
  // lifecycle events are relaxed stores into the recorder's static rings,
  // so black-box recording rides the steady-state path for free.
  obs::FlightRecorder* flight = obs::GlobalFlightRecorder();
  const bool flight_was_enabled = flight->enabled();
  flight->set_enabled(true);
  // First event claims this thread's ring slot; keep that outside the
  // counted window, like the workspace warm-up above.
  UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kProbeBegin, 0, 0);
  {
    CountAllocations counter;
    UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kQueryBegin, 0, length);
    counted_size = index.Query(r, length, 0.01, &workspace, &stats).size();
    UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kVerifyBegin, 64, 0);
    UJOIN_OBS_FLIGHT_EVENT(obs::FlightEvent::kQueryEnd,
                           static_cast<int64_t>(counted_size), 0);
    allocations = counter.count();
  }
  flight->set_enabled(flight_was_enabled);
  EXPECT_EQ(counted_size, warm_size);
  EXPECT_EQ(allocations, 0u)
      << "flight-event recording must not allocate on the probe path";
}

}  // namespace
}  // namespace ujoin
