#include "util/serde.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace ujoin {
namespace {

TEST(SerdeTest, RoundTripsScalarsAndStrings) {
  BinaryWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(123456789u);
  writer.WriteU64(uint64_t{1} << 52);
  writer.WriteI32(-42);
  writer.WriteI64(int64_t{-1} << 40);
  writer.WriteDouble(3.14159);
  writer.WriteString("hello");
  writer.WriteString("");

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU32().value(), 123456789u);
  EXPECT_EQ(reader.ReadU64().value(), uint64_t{1} << 52);
  EXPECT_EQ(reader.ReadI32().value(), -42);
  EXPECT_EQ(reader.ReadI64().value(), int64_t{-1} << 40);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.14159);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerdeTest, TruncatedReadsFailGracefully) {
  BinaryWriter writer;
  writer.WriteU64(100);  // length prefix promising 100 bytes
  BinaryReader reader(writer.buffer());
  Result<std::string> s = reader.ReadString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);

  BinaryReader empty("");
  EXPECT_FALSE(empty.ReadU32().ok());
  EXPECT_FALSE(empty.ReadDouble().ok());
}

TEST(SerdeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ujoin_serde_test.bin";
  BinaryWriter writer;
  writer.WriteString("payload");
  writer.WriteI32(7);
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  Result<BinaryReader> reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadString().value(), "payload");
  EXPECT_EQ(reader->ReadI32().value(), 7);
  EXPECT_TRUE(reader->AtEnd());
  std::remove(path.c_str());
}

TEST(SerdeTest, MissingFileIsIoError) {
  Result<BinaryReader> reader = BinaryReader::FromFile("/no/such/file.bin");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ujoin
