#include "util/status.h"

#include <gtest/gtest.h>

namespace ujoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad q");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad q");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad q");
}

TEST(StatusTest, AllFactoriesSetTheirCode) {
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace {
Status FailsThrough() {
  UJOIN_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}
Status Passes() {
  UJOIN_RETURN_IF_ERROR(Status::OK());
  return Status::AlreadyExists("reached end");
}
}  // namespace

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
  EXPECT_EQ(Passes().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace ujoin
