#include "util/rng.h"

#include <vector>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace ujoin {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 32; ++i) diffs += a.Next() != b.Next();
  EXPECT_GT(diffs, 16);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalHasRoughlyUnitMoments) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliTracksProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// Regression for a bug the rng-source lint rule surfaced: a test shuffled
// with std::shuffle + std::mt19937, whose permutation sequence is
// implementation-defined — "deterministic" only on one standard library.
// testing::Shuffle is pure Fisher-Yates over Rng, so the exact output for a
// fixed seed is pinned here and must never change across platforms or
// toolchains.
TEST(RngTest, ShufflePermutationIsPlatformStable) {
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Rng rng(7);
  testing::Shuffle(&v, rng);
  EXPECT_EQ(v, (std::vector<int>{1, 8, 3, 0, 4, 5, 9, 6, 2, 7}));
}

}  // namespace
}  // namespace ujoin
