// Differential gate for the vectorized kernel layer (util/simd.h): every
// ISA variant must match the scalar reference bit-for-bit — not within a
// tolerance — on random and adversarial inputs.  Comparisons go through
// std::bit_cast so that +0.0 vs -0.0 or NaN payload drift would fail too.
//
// The dispatched entry points are exercised alongside the explicitly-named
// variants, so on any machine the path the pipeline actually takes is under
// test; on x86-64 the SSE2 variant and (when the CPU has it) the AVX2
// variant are additionally pinned one by one.  Under -DUJOIN_SIMD=off the
// dispatcher IS the scalar reference and the test degenerates to a
// self-consistency check — still worth running: it keeps the suite green in
// the simd-off CI leg.

#include "util/simd.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ujoin {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

void ExpectSameBits(double expected, double actual, const std::string& what) {
  EXPECT_EQ(Bits(expected), Bits(actual))
      << what << ": scalar " << expected << " vs variant " << actual;
}

void ExpectSameVector(const std::vector<double>& expected,
                      const std::vector<double>& actual,
                      const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(Bits(expected[i]), Bits(actual[i]))
        << what << " lane " << i << ": scalar " << expected[i] << " vs "
        << actual[i];
  }
}

// Probability-like lanes: mostly interior values plus the adversarial mass
// the kernels see in production — exact 0 (pruned lanes), exact 1 (certain
// events), and near-1 values whose 4-term sums saturate the min(1, ·) clamp.
double RandomProb(Rng* rng) {
  const uint64_t sel = rng->Next() % 8;
  if (sel == 0) return 0.0;
  if (sel == 1) return 1.0;
  if (sel == 2) return 0.999999;
  return static_cast<double>(rng->Next() >> 11) * 0x1p-53;
}

std::vector<double> RandomProbs(Rng* rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = RandomProb(rng);
  return v;
}

// ---------------------------------------------------------------------------
// CdfCellUpdate
// ---------------------------------------------------------------------------

struct CdfCase {
  std::vector<double> l1, u1, u2, u3, lsel;
  double p1, p2;
};

CdfCase RandomCdfCase(Rng* rng, int width) {
  CdfCase c;
  const size_t n = static_cast<size_t>(width);
  c.l1 = RandomProbs(rng, n);
  c.u1 = RandomProbs(rng, n);
  c.u2 = RandomProbs(rng, n);
  c.u3 = RandomProbs(rng, n);
  c.lsel = RandomProbs(rng, n);
  c.p1 = RandomProb(rng);
  c.p2 = RandomProb(rng);
  return c;
}

using CdfKernel = double (*)(const double*, const double*, const double*,
                             const double*, const double*, double, double, int,
                             double*, double*);

void CheckCdfKernel(const CdfCase& c, int width, CdfKernel kernel,
                    const std::string& name) {
  const size_t n = static_cast<size_t>(width);
  std::vector<double> lo_ref(n, -1.0), up_ref(n, -1.0);
  std::vector<double> lo(n, -1.0), up(n, -1.0);
  const double max_ref =
      simd::scalar::CdfCellUpdate(c.l1.data(), c.u1.data(), c.u2.data(),
                                  c.u3.data(), c.lsel.data(), c.p1, c.p2,
                                  width, lo_ref.data(), up_ref.data());
  const double max_var =
      kernel(c.l1.data(), c.u1.data(), c.u2.data(), c.u3.data(),
             c.lsel.data(), c.p1, c.p2, width, lo.data(), up.data());
  ExpectSameBits(max_ref, max_var, name + " cell max, width " +
                                       std::to_string(width));
  ExpectSameVector(lo_ref, lo, name + " lo, width " + std::to_string(width));
  ExpectSameVector(up_ref, up, name + " up, width " + std::to_string(width));
}

void CheckCdfAllVariants(const CdfCase& c, int width) {
  CheckCdfKernel(c, width, &simd::CdfCellUpdate, "dispatched");
#if defined(UJOIN_SIMD_X86)
  CheckCdfKernel(c, width, &simd::detail::CdfCellUpdateSse2, "sse2");
  if (simd::ActiveIsa() == simd::Isa::kAvx2) {
    CheckCdfKernel(c, width, &simd::detail::CdfCellUpdateAvx2, "avx2");
  }
#elif defined(UJOIN_SIMD_NEON)
  CheckCdfKernel(c, width, &simd::detail::CdfCellUpdateNeon, "neon");
#endif
}

TEST(SimdKernelTest, CdfCellUpdateMatchesScalarOnRandomInputs) {
  Rng rng(0x5eed0001);
  // width = k+1; cover the singleton lane, every vector-remainder shape
  // around the 2- and 4-lane block sizes, and a band far wider than a block.
  for (int width : {1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 32, 33}) {
    for (int rep = 0; rep < 50; ++rep) {
      CheckCdfAllVariants(RandomCdfCase(&rng, width), width);
    }
  }
}

TEST(SimdKernelTest, CdfCellUpdateSaturatesIdentically) {
  // All-ones inputs saturate every upper lane at the min(1, sum) clamp; the
  // clamp must engage in the same lanes with the same bits everywhere.
  for (int width : {1, 2, 3, 5, 8, 17}) {
    CdfCase c;
    const size_t n = static_cast<size_t>(width);
    c.l1.assign(n, 1.0);
    c.u1.assign(n, 1.0);
    c.u2.assign(n, 1.0);
    c.u3.assign(n, 1.0);
    c.lsel.assign(n, 1.0);
    c.p1 = 1.0;
    c.p2 = 1.0;
    CheckCdfAllVariants(c, width);
  }
}

TEST(SimdKernelTest, CdfCellUpdateAllZeroStaysZero) {
  for (int width : {1, 2, 4, 7}) {
    CdfCase c;
    const size_t n = static_cast<size_t>(width);
    c.l1.assign(n, 0.0);
    c.u1.assign(n, 0.0);
    c.u2.assign(n, 0.0);
    c.u3.assign(n, 0.0);
    c.lsel.assign(n, 0.0);
    c.p1 = 0.0;
    c.p2 = 0.0;
    CheckCdfAllVariants(c, width);
  }
}

// ---------------------------------------------------------------------------
// EventDpStep
// ---------------------------------------------------------------------------

using EventKernel = void (*)(double, int, double*);

void CheckEventKernel(const std::vector<double>& init, double alpha, int upto,
                      EventKernel kernel, const std::string& name) {
  std::vector<double> ref = init;
  std::vector<double> got = init;
  simd::scalar::EventDpStep(alpha, upto, ref.data());
  kernel(alpha, upto, got.data());
  ExpectSameVector(ref, got,
                   name + " event dp, upto " + std::to_string(upto));
}

void CheckEventAllVariants(const std::vector<double>& init, double alpha,
                           int upto) {
  CheckEventKernel(init, alpha, upto, &simd::EventDpStep, "dispatched");
#if defined(UJOIN_SIMD_X86)
  CheckEventKernel(init, alpha, upto, &simd::detail::EventDpStepSse2, "sse2");
  if (simd::ActiveIsa() == simd::Isa::kAvx2) {
    CheckEventKernel(init, alpha, upto, &simd::detail::EventDpStepAvx2,
                     "avx2");
  }
#elif defined(UJOIN_SIMD_NEON)
  CheckEventKernel(init, alpha, upto, &simd::detail::EventDpStepNeon, "neon");
#endif
}

TEST(SimdKernelTest, EventDpStepMatchesScalar) {
  Rng rng(0x5eed0002);
  for (int upto : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 31}) {
    for (int rep = 0; rep < 50; ++rep) {
      const std::vector<double> init =
          RandomProbs(&rng, static_cast<size_t>(upto) + 1);
      CheckEventAllVariants(init, RandomProb(&rng), upto);
    }
  }
}

TEST(SimdKernelTest, EventDpStepBoundaryAlphas) {
  Rng rng(0x5eed0003);
  for (double alpha : {0.0, 1.0, 0.5}) {
    for (int upto : {0, 1, 6, 11}) {
      CheckEventAllVariants(RandomProbs(&rng, static_cast<size_t>(upto) + 1),
                            alpha, upto);
    }
  }
}

// ---------------------------------------------------------------------------
// DotSlots / IotaDotSlots
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, DotSlotsMatchesScalar) {
  Rng rng(0x5eed0004);
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                   size_t{5}, size_t{6}, size_t{7}, size_t{8}, size_t{11},
                   size_t{64}, size_t{65}}) {
    for (int rep = 0; rep < 30; ++rep) {
      const std::vector<double> a = RandomProbs(&rng, n);
      const std::vector<double> b = RandomProbs(&rng, n);
      const double ref = simd::scalar::DotSlots(a.data(), b.data(), n);
      ExpectSameBits(ref, simd::DotSlots(a.data(), b.data(), n),
                     "dispatched dot, n " + std::to_string(n));
#if defined(UJOIN_SIMD_X86)
      ExpectSameBits(ref, simd::detail::DotSlotsSse2(a.data(), b.data(), n),
                     "sse2 dot, n " + std::to_string(n));
      if (simd::ActiveIsa() == simd::Isa::kAvx2) {
        ExpectSameBits(ref, simd::detail::DotSlotsAvx2(a.data(), b.data(), n),
                       "avx2 dot, n " + std::to_string(n));
      }
#elif defined(UJOIN_SIMD_NEON)
      ExpectSameBits(ref, simd::detail::DotSlotsNeon(a.data(), b.data(), n),
                     "neon dot, n " + std::to_string(n));
#endif
    }
  }
}

TEST(SimdKernelTest, IotaDotSlotsMatchesScalar) {
  Rng rng(0x5eed0005);
  // k0 up to collection-scale counts: double(k0 + i) stays exact.
  for (int k0 : {0, 1, 2, 1000, 1 << 20}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                     size_t{9}, size_t{40}, size_t{41}}) {
      const std::vector<double> a = RandomProbs(&rng, n);
      const double ref = simd::scalar::IotaDotSlots(a.data(), k0, n);
      ExpectSameBits(ref, simd::IotaDotSlots(a.data(), k0, n),
                     "dispatched iota-dot, n " + std::to_string(n));
#if defined(UJOIN_SIMD_X86)
      ExpectSameBits(ref, simd::detail::IotaDotSlotsSse2(a.data(), k0, n),
                     "sse2 iota-dot, n " + std::to_string(n));
      if (simd::ActiveIsa() == simd::Isa::kAvx2) {
        ExpectSameBits(ref, simd::detail::IotaDotSlotsAvx2(a.data(), k0, n),
                       "avx2 iota-dot, n " + std::to_string(n));
      }
#elif defined(UJOIN_SIMD_NEON)
      ExpectSameBits(ref, simd::detail::IotaDotSlotsNeon(a.data(), k0, n),
                     "neon iota-dot, n " + std::to_string(n));
#endif
    }
  }
}

// ---------------------------------------------------------------------------
// Fingerprint64Batch
// ---------------------------------------------------------------------------

using BatchKernel = void (*)(const char* const*, size_t, size_t, uint64_t*);

void CheckBatch(const std::vector<std::string>& keys, size_t len,
                BatchKernel kernel, const std::string& name) {
  std::vector<const char*> ptrs;
  for (const std::string& k : keys) ptrs.push_back(k.data());
  std::vector<uint64_t> ref(keys.size() + 1, 0xdead);
  std::vector<uint64_t> got(keys.size() + 1, 0xdead);
  simd::scalar::Fingerprint64Batch(ptrs.data(), len, keys.size(), ref.data());
  kernel(ptrs.data(), len, keys.size(), got.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << name << " key " << i << " of "
                              << keys.size() << ", len " << len;
    // Batch result must also equal the single-key fingerprint the hash
    // table computed at insert time, or batched lookups would miss.
    EXPECT_EQ(simd::scalar::Fingerprint64(keys[i].data(), len), got[i]);
  }
  // The kernel must not write past `count` outputs.
  EXPECT_EQ(uint64_t{0xdead}, got[keys.size()]) << name;
}

TEST(SimdKernelTest, Fingerprint64BatchMatchesScalar) {
  Rng rng(0x5eed0006);
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{7},
                     size_t{8}, size_t{9}, size_t{24}}) {
    // Counts straddling the 4-way interleave: empty batch, singleton,
    // sub-block, exact blocks, and block + remainder.
    for (size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                         size_t{4}, size_t{5}, size_t{8}, size_t{13}}) {
      std::vector<std::string> keys;
      for (size_t i = 0; i < count; ++i) {
        std::string key(len, '\0');
        for (char& ch : key) {
          ch = static_cast<char>(static_cast<unsigned char>(rng.Next()));
        }
        keys.push_back(key);
      }
      CheckBatch(keys, len, &simd::Fingerprint64Batch, "dispatched");
      // The interleaved core is plain C++ and compiled everywhere (it is
      // the dispatch target of every vector ISA) — pin it unconditionally.
      CheckBatch(keys, len, &simd::detail::Fingerprint64BatchInterleaved,
                 "interleaved");
    }
  }
}

TEST(SimdKernelTest, ActiveIsaNameIsConsistent) {
  const std::string name = simd::ActiveIsaName();
  switch (simd::ActiveIsa()) {
    case simd::Isa::kScalar:
      EXPECT_EQ("scalar", name);
      break;
    case simd::Isa::kSse2:
      EXPECT_EQ("sse2", name);
      break;
    case simd::Isa::kAvx2:
      EXPECT_EQ("avx2", name);
      break;
    case simd::Isa::kNeon:
      EXPECT_EQ("neon", name);
      break;
  }
#if defined(UJOIN_SIMD_DISABLED)
  EXPECT_EQ("scalar", name);
#endif
}

}  // namespace
}  // namespace ujoin
