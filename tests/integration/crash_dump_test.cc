// Black-box crash-dump integration test: a child process installs the
// flight recorder's crash handler, runs a real self-join, and raises
// SIGSEGV from the progress callback mid-run.  The parent asserts the
// child died with that signal AND left a well-formed "ujoin.flight_record"
// crash dump behind — written by the async-signal-safe fd path, since no
// orderly exit ever ran.  The dump is then re-validated by
// tools/validate_flight_record.py (ctest fixture ujoin_flight_crash).
//
// Skipped under ASan/TSan: both sanitizers own the SIGSEGV disposition
// (allow_user_segv_handler) and fork+signal death is exactly what their
// interceptors reroute.  The Release and UBSan legs run it.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/self_join.h"
#include "obs/flight_recorder.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define UJOIN_CRASH_TEST_SKIP 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UJOIN_CRASH_TEST_SKIP 1
#endif

namespace ujoin {
namespace {

// Progress callback for the child: let the first wave finish so the rings
// hold real pipeline events, then die mid-join.
void CrashAfterFirstWave(const JoinProgress& progress, void* /*user*/) {
  if (progress.processed > 0) raise(SIGSEGV);
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CrashDumpTest, SegfaultMidJoinLeavesWellFormedRecord) {
#ifdef UJOIN_CRASH_TEST_SKIP
  GTEST_SKIP() << "sanitizer owns the SIGSEGV disposition";
#endif
  // ctest runs this test with the binary dir as its working directory;
  // the validator fixture reads the same relative path.
  const std::string dump_path = "flight_crash_sample.json";
  std::remove(dump_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the crash handler, then run a join that kills itself at
    // the first wave boundary.  Everything below the raise must come from
    // the signal handler's dump path.
    if (!obs::InstallCrashDump(dump_path.c_str())) _exit(3);
    DatasetOptions opt;
    opt.kind = DatasetOptions::Kind::kNames;
    opt.size = 120;
    opt.theta = 0.2;
    opt.seed = 29;
    const Dataset dataset = GenerateDataset(opt);
    JoinOptions options = JoinOptions::Qfct(2, 0.1);
    options.progress_fn = &CrashAfterFirstWave;
    Result<SelfJoinResult> result =
        SimilaritySelfJoin(dataset.strings, dataset.alphabet, options);
    // Reaching here means the signal never fired: report a clean exit the
    // parent will reject.
    _exit(result.ok() ? 0 : 4);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited instead of dying on SIGSEGV; status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string record = ReadWholeFile(dump_path);
  ASSERT_FALSE(record.empty()) << "crash handler wrote no record";
  // Structurally whole despite the crash: schema header, crash reason with
  // the delivering signal, and a closed document.
  EXPECT_EQ(record.rfind("{\"schema\":\"ujoin.flight_record\"", 0), 0u);
  EXPECT_NE(record.find("\"reason\":\"crash\",\"signal\":11"),
            std::string::npos);
  EXPECT_EQ(record.substr(record.size() - 3), "]}\n");
  // The rings hold the join that was in flight: the first wave's lifecycle
  // and its probes made it in before the signal.
  EXPECT_NE(record.find("\"kind\":\"wave_start\""), std::string::npos);
  EXPECT_NE(record.find("\"kind\":\"probe_begin\""), std::string::npos);
  EXPECT_NE(record.find("\"threads_registered\":"), std::string::npos);
}

// Writes the crash sample even when the segfault leg is skipped, so the
// ctest validator fixture (FIXTURES_REQUIRED ujoin_flight_crash) always
// has bytes to check: under sanitizers the dump comes from the orderly
// path with the same serializer.
TEST(CrashDumpTest, WritesCrashSampleForValidator) {
  const std::string dump_path = "flight_crash_sample.json";
  std::ifstream probe(dump_path);
  if (probe.good()) return;  // the segfault leg already wrote the real one
  obs::FlightDumpOptions options;
  options.reason = "crash";
  options.signal = SIGSEGV;
  ASSERT_TRUE(obs::DumpFlightRecord(dump_path.c_str(), options));
}

}  // namespace
}  // namespace ujoin
