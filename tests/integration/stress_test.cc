// Randomized whole-pipeline consistency sweep: many small collections with
// random parameters, each checked against exhaustive ground truth.  This is
// the widest net in the suite — anything the targeted tests miss tends to
// surface here first.

#include <set>

#include <gtest/gtest.h>

#include "join/ujoin.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace ujoin {
namespace {

struct StressCase {
  uint64_t seed;
};

class PipelineStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(PipelineStressTest, RandomConfigurationMatchesGroundTruth) {
  Rng rng(GetParam().seed);
  const Alphabet alphabet = Alphabet::Dna();  // small Σ: many collisions

  JoinOptions options;
  options.k = static_cast<int>(rng.UniformInt(0, 3));
  options.q = static_cast<int>(rng.UniformInt(2, 4));
  options.tau = rng.UniformDouble() * 0.6;
  options.use_freq_filter = rng.Bernoulli(0.7);
  options.use_cdf_filter = rng.Bernoulli(0.7);
  options.qgram_probabilistic_pruning = rng.Bernoulli(0.7);
  options.early_stop_verification = rng.Bernoulli(0.5);
  options.verify_method =
      rng.Bernoulli(0.3) ? VerifyMethod::kCompressedTrie : VerifyMethod::kTrie;

  testing::RandomStringOptions gen;
  gen.min_length = std::max(1, options.k);
  gen.max_length = 9;
  gen.theta = 0.2 + 0.3 * rng.UniformDouble();
  gen.max_alternatives = 3;
  std::vector<UncertainString> collection;
  const int size = static_cast<int>(rng.UniformInt(10, 35));
  for (int i = 0; i < size; ++i) {
    collection.push_back(testing::RandomUncertainString(alphabet, gen, rng));
  }

  Result<SelfJoinResult> got =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  // Ground truth by brute-force world enumeration.
  std::set<std::pair<uint32_t, uint32_t>> truth;
  for (uint32_t i = 0; i < collection.size(); ++i) {
    for (uint32_t j = i + 1; j < collection.size(); ++j) {
      if (testing::BruteForceMatchProbability(collection[i], collection[j],
                                              options.k) > options.tau) {
        truth.insert({i, j});
      }
    }
  }
  std::set<std::pair<uint32_t, uint32_t>> got_pairs;
  for (const JoinPair& p : got->pairs) {
    got_pairs.insert({p.lhs, p.rhs});
    EXPECT_GT(p.probability, options.tau);
  }
  if (options.qgram_probabilistic_pruning) {
    // Theorem 2's bound is an approximation under R-side correlation (see
    // DESIGN.md): allow no false positives and at most a whisker of misses
    // on these adversarial small-alphabet inputs.
    for (const auto& pair : got_pairs) {
      EXPECT_TRUE(truth.count(pair))
          << "false positive (" << pair.first << "," << pair.second << ")";
    }
    size_t missed = 0;
    for (const auto& pair : truth) missed += !got_pairs.count(pair);
    EXPECT_LE(missed, truth.size() / 10 + 1)
        << "seed=" << GetParam().seed << " k=" << options.k
        << " tau=" << options.tau;
  } else {
    // Conservative mode: exact equality, always.
    EXPECT_EQ(got_pairs, truth)
        << "seed=" << GetParam().seed << " k=" << options.k
        << " q=" << options.q << " tau=" << options.tau
        << " freq=" << options.use_freq_filter
        << " cdf=" << options.use_cdf_filter;
  }
}

std::vector<StressCase> MakeCases() {
  std::vector<StressCase> cases;
  for (uint64_t seed = 1000; seed < 1040; ++seed) cases.push_back({seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineStressTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<StressCase>&
                                param_info) {
                           return "seed" +
                                  std::to_string(param_info.param.seed);
                         });

}  // namespace
}  // namespace ujoin
