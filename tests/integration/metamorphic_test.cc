// Metamorphic properties of the join: relations that must hold between
// runs with systematically varied inputs, independent of absolute results.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/ujoin.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace ujoin {
namespace {

using PairKey = std::pair<uint32_t, uint32_t>;

std::set<PairKey> PairSet(const SelfJoinResult& result) {
  std::set<PairKey> out;
  for (const JoinPair& p : result.pairs) out.insert({p.lhs, p.rhs});
  return out;
}

Dataset SmallDataset(uint64_t seed, int size = 50) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt);
}

TEST(MetamorphicTest, ResultsShrinkAsTauGrows) {
  const Dataset data = SmallDataset(81);
  std::set<PairKey> previous;
  bool first = true;
  for (double tau : {0.01, 0.05, 0.1, 0.3, 0.6}) {
    JoinOptions options = JoinOptions::Qfct(2, tau);
    options.always_verify = true;
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    ASSERT_TRUE(out.ok());
    const std::set<PairKey> pairs = PairSet(*out);
    if (!first) {
      EXPECT_TRUE(std::includes(previous.begin(), previous.end(),
                                pairs.begin(), pairs.end()))
          << "tau=" << tau;
    }
    previous = pairs;
    first = false;
  }
}

TEST(MetamorphicTest, ResultsGrowAsKGrows) {
  const Dataset data = SmallDataset(82);
  std::set<PairKey> previous;
  bool first = true;
  for (int k : {0, 1, 2, 3}) {
    JoinOptions options = JoinOptions::Qfct(k, 0.1);
    options.always_verify = true;
    Result<SelfJoinResult> out =
        SimilaritySelfJoin(data.strings, data.alphabet, options);
    ASSERT_TRUE(out.ok());
    const std::set<PairKey> pairs = PairSet(*out);
    if (!first) {
      EXPECT_TRUE(std::includes(pairs.begin(), pairs.end(), previous.begin(),
                                previous.end()))
          << "k=" << k;
    }
    previous = pairs;
    first = false;
  }
}

TEST(MetamorphicTest, AddingStringsPreservesExistingPairs) {
  const Dataset data = SmallDataset(83, 60);
  const JoinOptions options = JoinOptions::Qfct(2, 0.1);
  std::vector<UncertainString> subset(data.strings.begin(),
                                      data.strings.begin() + 40);
  Result<SelfJoinResult> small =
      SimilaritySelfJoin(subset, data.alphabet, options);
  Result<SelfJoinResult> full =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  ASSERT_TRUE(small.ok() && full.ok());
  const std::set<PairKey> full_pairs = PairSet(*full);
  for (const PairKey& pair : PairSet(*small)) {
    EXPECT_TRUE(full_pairs.count(pair))
        << "(" << pair.first << "," << pair.second << ")";
  }
  // And restricting the full join to the first 40 ids gives the small join.
  std::set<PairKey> restricted;
  for (const PairKey& pair : full_pairs) {
    if (pair.first < 40 && pair.second < 40) restricted.insert(pair);
  }
  EXPECT_EQ(restricted, PairSet(*small));
}

TEST(MetamorphicTest, PermutationInvariance) {
  const Dataset data = SmallDataset(84);
  const JoinOptions options = JoinOptions::Qfct(2, 0.1);
  Result<SelfJoinResult> base =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  ASSERT_TRUE(base.ok());
  // Reverse the collection; map indices back.
  std::vector<UncertainString> reversed(data.strings.rbegin(),
                                        data.strings.rend());
  Result<SelfJoinResult> rev =
      SimilaritySelfJoin(reversed, data.alphabet, options);
  ASSERT_TRUE(rev.ok());
  const uint32_t n = static_cast<uint32_t>(data.strings.size());
  std::set<PairKey> remapped;
  for (const JoinPair& p : rev->pairs) {
    uint32_t a = n - 1 - p.lhs;
    uint32_t b = n - 1 - p.rhs;
    if (a > b) std::swap(a, b);
    remapped.insert({a, b});
  }
  EXPECT_EQ(remapped, PairSet(*base));
}

TEST(MetamorphicTest, RunsAreDeterministic) {
  const Dataset data = SmallDataset(85);
  const JoinOptions options = JoinOptions::Qfct(2, 0.1);
  Result<SelfJoinResult> a =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  Result<SelfJoinResult> b =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->pairs.size(), b->pairs.size());
  for (size_t i = 0; i < a->pairs.size(); ++i) {
    EXPECT_EQ(a->pairs[i].lhs, b->pairs[i].lhs);
    EXPECT_EQ(a->pairs[i].rhs, b->pairs[i].rhs);
    EXPECT_DOUBLE_EQ(a->pairs[i].probability, b->pairs[i].probability);
  }
}

TEST(MetamorphicTest, DeterministicCollectionReducesToClassicJoin) {
  // On a deterministic collection, Pr(ed <= k) is 0 or 1, so for any
  // tau in (0, 1) the join equals the classic edit-distance join.
  Alphabet names = Alphabet::Names();
  Rng rng(86);
  std::vector<UncertainString> collection;
  std::vector<std::string> raw;
  for (int i = 0; i < 60; ++i) {
    std::string s = testing::RandomString(
        names, static_cast<int>(rng.UniformInt(4, 10)), rng);
    if (i % 3 == 1 && !raw.empty()) {
      s = testing::RandomEdits(raw[rng.Uniform(raw.size())], names, 2, rng);
      if (s.empty()) s.push_back('x');
    }
    raw.push_back(s);
    collection.push_back(UncertainString::FromDeterministic(s));
  }
  for (double tau : {0.01, 0.5, 0.99}) {
    Result<SelfJoinResult> out = SimilaritySelfJoin(
        collection, names, JoinOptions::Qfct(2, tau));
    ASSERT_TRUE(out.ok());
    std::set<PairKey> expected;
    for (uint32_t i = 0; i < raw.size(); ++i) {
      for (uint32_t j = i + 1; j < raw.size(); ++j) {
        if (WithinEditDistance(raw[i], raw[j], 2)) expected.insert({i, j});
      }
    }
    EXPECT_EQ(PairSet(*out), expected) << "tau=" << tau;
    for (const JoinPair& p : out->pairs) {
      EXPECT_DOUBLE_EQ(p.probability, 1.0);
    }
  }
}

TEST(MetamorphicTest, SearchAgreesWithSelfJoin) {
  const Dataset data = SmallDataset(87, 40);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<SelfJoinResult> join =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(data.strings, data.alphabet, options);
  ASSERT_TRUE(join.ok() && searcher.ok());
  const std::set<PairKey> join_pairs = PairSet(*join);
  for (uint32_t q = 0; q < data.strings.size(); ++q) {
    Result<std::vector<SearchHit>> hits = searcher->Search(data.strings[q]);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> hit_ids;
    for (const SearchHit& h : *hits) hit_ids.insert(h.id);
    // The searcher reports q itself; the self-join does not.
    for (uint32_t other = 0; other < data.strings.size(); ++other) {
      if (other == q) continue;
      const PairKey key{std::min(q, other), std::max(q, other)};
      EXPECT_EQ(hit_ids.count(other) > 0, join_pairs.count(key) > 0)
          << "q=" << q << " other=" << other;
    }
  }
}

}  // namespace
}  // namespace ujoin
