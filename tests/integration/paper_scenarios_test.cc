// End-to-end reproductions of the paper's worked scenarios and scaled-down
// versions of its experimental configurations.

#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/ujoin.h"
#include "testing/test_util.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

// Table 1, driven through the full indexed join machinery instead of the
// pair-level filter: r joins against {S1..S4} and only S4 may reach
// verification via the q-gram stage.
TEST(PaperScenariosTest, Table1ThroughTheIndexedPipeline) {
  const Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("A{(C,0.5),(G,0.5)}A{(C,0.5),(G,0.5)}AC", dna),        // S1
      Parse("AA{(G,0.9),(T,0.1)}G{(C,0.3),(G,0.2),(T,0.5)}C", dna),  // S2
      Parse("G{(A,0.8),(G,0.2)}CT{(A,0.8),(C,0.1),(T,0.1)}C", dna),  // S3
      Parse("{(G,0.8),(T,0.2)}GA{(C,0.3),(G,0.2),(T,0.5)}CT", dna),  // S4
  };
  InvertedSegmentIndex index(/*k=*/1, /*q=*/2);
  for (uint32_t id = 0; id < collection.size(); ++id) {
    ASSERT_TRUE(index.Insert(id, collection[id]).ok());
  }
  const UncertainString r = UncertainString::FromDeterministic("GGATCC");
  IndexQueryStats stats;
  const std::vector<IndexCandidate> candidates =
      index.Query(r, 6, /*tau=*/0.25, &stats);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 3u);  // S4
  EXPECT_NEAR(candidates[0].upper_bound, 0.4, 1e-9);
  // S1 matches no segment at all, so its id never even surfaces in the
  // merge; S2 surfaces with one matched segment and is support-pruned.
  EXPECT_EQ(stats.ids_touched, 3);
  EXPECT_EQ(stats.support_pruned, 1);      // S2 (Lemma 5)
  EXPECT_EQ(stats.probability_pruned, 1);  // S3 (Theorem 2, 0.2 <= 0.25)
}

// The Section 3.2 example through the index: the overlap-grouped q(r,1)
// must drive the merged α correctly.
TEST(PaperScenariosTest, Section32AlphaThroughProbeSets) {
  const Alphabet dna = Alphabet::Dna();
  const UncertainString r = Parse("A{(A,0.8),(C,0.2)}AATT", dna);
  const UncertainString s = Parse("A{(A,0.8),(C,0.2)}AGCT", dna);
  QGramOptions options;
  options.k = 1;
  options.q = 3;
  Result<QGramFilterOutcome> out = EvaluateQGramFilter(r, s, options);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->alphas.size(), 1u);
  // α_1 = Pr(E_1) = 0.68 exactly as the paper computes.
  EXPECT_NEAR(out->alphas[0], 0.68, 1e-9);
}

// Scaled-down versions of the two experimental configurations: the QFCT
// join must match the exhaustive ground truth on both.
TEST(PaperScenariosTest, DblpConfigurationEndToEnd) {
  DatasetOptions data_opt;
  data_opt.kind = DatasetOptions::Kind::kNames;
  data_opt.size = 150;
  data_opt.theta = 0.2;
  data_opt.seed = 91;
  data_opt.max_uncertain_positions = 5;
  const Dataset data = GenerateDataset(data_opt);
  JoinOptions options = JoinOptions::Qfct(2, 0.1, 3);  // paper defaults
  options.always_verify = true;
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  Result<SelfJoinResult> truth =
      ExhaustiveSelfJoin(data.strings, data.alphabet, options);
  ASSERT_TRUE(got.ok() && truth.ok());
  ASSERT_EQ(got->pairs.size(), truth->pairs.size());
  for (size_t i = 0; i < got->pairs.size(); ++i) {
    EXPECT_EQ(got->pairs[i].lhs, truth->pairs[i].lhs);
    EXPECT_EQ(got->pairs[i].rhs, truth->pairs[i].rhs);
  }
  EXPECT_GT(got->pairs.size(), 0u);  // the workload must be join-rich
}

TEST(PaperScenariosTest, ProteinConfigurationEndToEnd) {
  DatasetOptions data_opt;
  data_opt.kind = DatasetOptions::Kind::kProtein;
  data_opt.size = 120;
  data_opt.theta = 0.1;
  data_opt.seed = 92;
  data_opt.max_uncertain_positions = 5;
  const Dataset data = GenerateDataset(data_opt);
  JoinOptions options = JoinOptions::Qfct(4, 0.01, 3);  // paper defaults
  options.always_verify = true;
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(data.strings, data.alphabet, options);
  Result<SelfJoinResult> truth =
      ExhaustiveSelfJoin(data.strings, data.alphabet, options);
  ASSERT_TRUE(got.ok() && truth.ok());
  std::set<std::pair<uint32_t, uint32_t>> got_pairs, truth_pairs;
  for (const JoinPair& p : got->pairs) got_pairs.insert({p.lhs, p.rhs});
  for (const JoinPair& p : truth->pairs) truth_pairs.insert({p.lhs, p.rhs});
  EXPECT_EQ(got_pairs, truth_pairs);
  EXPECT_GT(got_pairs.size(), 0u);
}

// The filter-effectiveness ordering of Figure 2, asserted as an invariant
// on a scaled workload: cascade counts are monotone and the CDF stage
// decides most of what the q-gram stage lets through.
TEST(PaperScenariosTest, FilterCascadeOrdering) {
  DatasetOptions data_opt;
  data_opt.kind = DatasetOptions::Kind::kNames;
  data_opt.size = 300;
  data_opt.theta = 0.2;
  data_opt.seed = 93;
  data_opt.max_uncertain_positions = 5;
  const Dataset data = GenerateDataset(data_opt);
  Result<SelfJoinResult> out = SimilaritySelfJoin(
      data.strings, data.alphabet, JoinOptions::Qfct(2, 0.1, 3));
  ASSERT_TRUE(out.ok());
  const JoinStats& stats = out->stats;
  // The q-gram stage must remove the overwhelming majority of pairs.
  EXPECT_LT(stats.qgram_candidates, stats.length_compatible_pairs / 10);
  // And the verified share must be a minority of what q-gram passed.
  EXPECT_LT(stats.verified_pairs, stats.qgram_candidates);
  EXPECT_EQ(stats.freq_candidates,
            stats.cdf_accepted + stats.cdf_rejected + stats.cdf_undecided);
}

}  // namespace
}  // namespace ujoin
