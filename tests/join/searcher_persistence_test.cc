#include <algorithm>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "index/segment_index.h"
#include "join/search.h"
#include "testing/test_util.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SmallDataset(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IndexSerializationTest, RoundTripPreservesQueries) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(60, 301);
  InvertedSegmentIndex original(2, 3);
  for (uint32_t id = 0; id < collection.size(); ++id) {
    ASSERT_TRUE(original.Insert(id, collection[id]).ok());
  }
  BinaryWriter writer;
  original.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Result<InvertedSegmentIndex> restored =
      InvertedSegmentIndex::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored->num_postings(), original.num_postings());
  EXPECT_EQ(restored->MemoryUsage(), original.MemoryUsage());
  // Identical candidates for every probe.
  for (uint32_t probe = 0; probe < collection.size(); probe += 7) {
    const UncertainString& r = collection[probe];
    for (int l = std::max(1, r.length() - 2); l <= r.length() + 2; ++l) {
      const auto a = original.Query(r, l, 0.1);
      const auto b = restored->Query(r, l, 0.1);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_NEAR(a[i].upper_bound, b[i].upper_bound, 1e-12);
      }
    }
  }
}

// Serialization determinism: the bytes are a pure function of the indexed
// content.  Serializing, deserializing, and serializing again must produce
// the same buffer even though the deserialized index accumulated its
// postings in sorted key order rather than world-enumeration order.
TEST(IndexSerializationTest, SaveLoadSaveIsByteIdentical) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(60, 307);
  InvertedSegmentIndex original(2, 3);
  for (uint32_t id = 0; id < collection.size(); ++id) {
    ASSERT_TRUE(original.Insert(id, collection[id]).ok());
  }
  BinaryWriter first;
  original.Serialize(&first);

  BinaryReader reader(first.buffer());
  Result<InvertedSegmentIndex> restored =
      InvertedSegmentIndex::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  BinaryWriter second;
  restored->Serialize(&second);
  ASSERT_EQ(first.buffer().size(), second.buffer().size());
  EXPECT_TRUE(std::equal(first.buffer().begin(), first.buffer().end(),
                         second.buffer().begin()));

  // Freezing rearranges the in-memory arena but must not change the bytes.
  restored->Freeze();
  BinaryWriter frozen;
  restored->Serialize(&frozen);
  ASSERT_EQ(first.buffer().size(), frozen.buffer().size());
  EXPECT_TRUE(std::equal(first.buffer().begin(), first.buffer().end(),
                         frozen.buffer().begin()));
}

// Same property end to end through the searcher's file format.
TEST(SearcherPersistenceTest, SaveLoadSaveFilesAreByteIdentical) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(50, 308);
  Result<SimilaritySearcher> original = SimilaritySearcher::Create(
      collection, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(original.ok());
  const std::string path_a = TempPath("ujoin_searcher_bytes_a.bin");
  const std::string path_b = TempPath("ujoin_searcher_bytes_b.bin");
  ASSERT_TRUE(original->Save(path_a).ok());
  Result<SimilaritySearcher> loaded =
      SimilaritySearcher::Load(path_a, alphabet);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->Save(path_b).ok());

  const auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes_a = read_all(path_a);
  const std::string bytes_b = read_all(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SearcherPersistenceTest, SaveLoadRoundTripIdenticalResults) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(80, 302);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<SimilaritySearcher> original =
      SimilaritySearcher::Create(collection, alphabet, options);
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("ujoin_searcher.bin");
  ASSERT_TRUE(original->Save(path).ok());

  Result<SimilaritySearcher> loaded =
      SimilaritySearcher::Load(path, alphabet);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->collection().size(), collection.size());
  EXPECT_EQ(loaded->IndexMemoryUsage(), original->IndexMemoryUsage());
  const std::vector<UncertainString> queries = SmallDataset(15, 303);
  for (const UncertainString& query : queries) {
    Result<std::vector<SearchHit>> a = original->Search(query);
    Result<std::vector<SearchHit>> b = loaded->Search(query);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id);
      EXPECT_NEAR((*a)[i].probability, (*b)[i].probability, 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(SearcherPersistenceTest, CollectionProbabilitiesSurviveExactly) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(30, 304);
  Result<SimilaritySearcher> original = SimilaritySearcher::Create(
      collection, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("ujoin_searcher_exact.bin");
  ASSERT_TRUE(original->Save(path).ok());
  Result<SimilaritySearcher> loaded =
      SimilaritySearcher::Load(path, alphabet);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < collection.size(); ++i) {
    const UncertainString& a = collection[i];
    const UncertainString& b = loaded->collection()[i];
    ASSERT_EQ(a.length(), b.length());
    for (int pos = 0; pos < a.length(); ++pos) {
      auto aa = a.AlternativesAt(pos);
      auto bb = b.AlternativesAt(pos);
      ASSERT_EQ(aa.size(), bb.size());
      for (size_t alt = 0; alt < aa.size(); ++alt) {
        EXPECT_EQ(aa[alt].symbol, bb[alt].symbol);
        // Binary format: bit-exact probabilities (unlike the text format).
        EXPECT_EQ(aa[alt].prob, bb[alt].prob);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SearcherPersistenceTest, RejectsGarbageAndTruncation) {
  const Alphabet alphabet = Alphabet::Names();
  const std::string path = TempPath("ujoin_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a searcher file at all";
  }
  EXPECT_FALSE(SimilaritySearcher::Load(path, alphabet).ok());

  // A valid file truncated in the middle must fail cleanly, not crash.
  const std::vector<UncertainString> collection = SmallDataset(20, 305);
  Result<SimilaritySearcher> original = SimilaritySearcher::Create(
      collection, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(original->Save(path).ok());
  Result<BinaryReader> full = BinaryReader::FromFile(path);
  ASSERT_TRUE(full.ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  Result<SimilaritySearcher> truncated =
      SimilaritySearcher::Load(path, alphabet);
  EXPECT_FALSE(truncated.ok());
  std::remove(path.c_str());
}

TEST(SearcherPersistenceTest, RejectsAlphabetMismatch) {
  const Alphabet names = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(10, 306);
  Result<SimilaritySearcher> original =
      SimilaritySearcher::Create(collection, names, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("ujoin_searcher_alpha.bin");
  ASSERT_TRUE(original->Save(path).ok());
  // DNA alphabet cannot hold lowercase name symbols.
  Result<SimilaritySearcher> loaded =
      SimilaritySearcher::Load(path, Alphabet::Dna());
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ujoin
