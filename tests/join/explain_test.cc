#include "join/explain.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "text/alphabet.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SmallDataset(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

Result<SimilaritySearcher> MakeSearcher(
    const std::vector<UncertainString>& collection) {
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  return SimilaritySearcher::Create(collection, Alphabet::Names(), options);
}

std::set<uint32_t> HitIds(const std::vector<SearchHit>& hits) {
  std::set<uint32_t> ids;
  for (const SearchHit& h : hits) ids.insert(h.id);
  return ids;
}

// Explain is a replay, not a different algorithm: its hits are exactly
// Search's, and the emitted candidates in the narrative are exactly the
// hits.
TEST(ExplainTest, HitsMatchSearch) {
  const std::vector<UncertainString> collection = SmallDataset(60, 3);
  Result<SimilaritySearcher> searcher = MakeSearcher(collection);
  ASSERT_TRUE(searcher.ok());
  for (uint32_t q = 0; q < 6; ++q) {
    const UncertainString& query = collection[q * 9];
    Result<std::vector<SearchHit>> hits = searcher->Search(query);
    ASSERT_TRUE(hits.ok());
    Result<ExplainResult> explain = searcher->Explain(query);
    ASSERT_TRUE(explain.ok()) << explain.status().ToString();
    EXPECT_EQ(HitIds(explain->hits), HitIds(*hits));

    std::set<uint32_t> emitted;
    for (const ExplainCandidate& c : explain->data.candidates) {
      if (c.emitted) emitted.insert(c.id);
    }
    EXPECT_EQ(emitted, HitIds(*hits));
    // Every probed length accounts for its cascade survivors.
    int64_t cascade = 0;
    for (const ExplainProbe& p : explain->data.probes) {
      cascade += p.candidates;
    }
    EXPECT_EQ(cascade,
              static_cast<int64_t>(explain->data.candidates.size()));
  }
}

// Without the timing section the envelope is a pure function of
// (index, query, limits): byte-identical across repeated replays and
// across independently built searchers over the same collection.
TEST(ExplainTest, JsonWithoutTimingIsByteDeterministic) {
  const std::vector<UncertainString> collection = SmallDataset(50, 5);
  Result<SimilaritySearcher> a = MakeSearcher(collection);
  Result<SimilaritySearcher> b = MakeSearcher(collection);
  ASSERT_TRUE(a.ok() && b.ok());
  const SearchLimits limits;
  for (uint32_t q = 0; q < 5; ++q) {
    const UncertainString& query = collection[q * 7];
    Result<ExplainResult> ra1 = a->Explain(query);
    Result<ExplainResult> ra2 = a->Explain(query);
    Result<ExplainResult> rb = b->Explain(query);
    ASSERT_TRUE(ra1.ok() && ra2.ok() && rb.ok());
    const std::string json =
        RenderExplainJson(*a, query, *ra1, limits, /*include_timing=*/false);
    EXPECT_EQ(json.rfind("{\"schema\":\"ujoin.explain\","
                         "\"schema_version\":1,", 0),
              0u)
        << json.substr(0, 80);
    EXPECT_EQ(json.back(), '\n');
    EXPECT_EQ(json.find("timing_ns"), std::string::npos);
    EXPECT_EQ(RenderExplainJson(*a, query, *ra2, limits, false), json);
    EXPECT_EQ(RenderExplainJson(*b, query, *rb, limits, false), json);
  }
}

TEST(ExplainTest, TimingSectionIsOptIn) {
  const std::vector<UncertainString> collection = SmallDataset(30, 7);
  Result<SimilaritySearcher> searcher = MakeSearcher(collection);
  ASSERT_TRUE(searcher.ok());
  const SearchLimits limits;
  Result<ExplainResult> result = searcher->Explain(collection[0]);
  ASSERT_TRUE(result.ok());
  const std::string timed =
      RenderExplainJson(*searcher, collection[0], *result, limits,
                        /*include_timing=*/true);
  EXPECT_NE(timed.find("\"timing_ns\":{"), std::string::npos);
}

// Explain works on a Load-restored searcher (nothing has to be attached at
// Create time) and replays identically to the original — the persisted
// index carries everything the narrative depends on.
TEST(ExplainTest, LoadRestoredSearcherExplainsIdentically) {
  const std::vector<UncertainString> collection = SmallDataset(50, 11);
  Result<SimilaritySearcher> original = MakeSearcher(collection);
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "ujoin_explain_test.bin";
  ASSERT_TRUE(original->Save(path).ok());
  Result<SimilaritySearcher> loaded =
      SimilaritySearcher::Load(path, Alphabet::Names());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const SearchLimits limits;
  for (uint32_t q = 0; q < 5; ++q) {
    const UncertainString& query = collection[q * 7];
    Result<ExplainResult> a = original->Explain(query);
    Result<ExplainResult> b = loaded->Explain(query);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(RenderExplainJson(*original, query, *a, limits, false),
              RenderExplainJson(*loaded, query, *b, limits, false));
  }
}

// A starved world budget shows up in the narrative: some candidate is
// decided by the budget fallback, the envelope names the stage, and the
// replay's stats count the fallback — the same story the query log tells.
TEST(ExplainTest, BudgetFallbackIsVisibleInNarrative) {
  const std::vector<UncertainString> collection = SmallDataset(60, 13);
  Result<SimilaritySearcher> searcher = MakeSearcher(collection);
  ASSERT_TRUE(searcher.ok());
  SearchLimits limits;
  limits.max_verify_worlds = 1;

  bool saw_fallback = false;
  for (uint32_t q = 0; q < collection.size() && !saw_fallback; q += 5) {
    const UncertainString& query = collection[q];
    Result<ExplainResult> result = searcher->Explain(query, &limits);
    ASSERT_TRUE(result.ok());
    for (const ExplainCandidate& c : result->data.candidates) {
      if (c.stage != ExplainStage::kBudgetFallback) continue;
      saw_fallback = true;
      EXPECT_GT(result->stats.budget_fallbacks, 0);
      const std::string json = RenderExplainJson(*searcher, query, *result,
                                                 limits, false);
      EXPECT_NE(json.find("\"stage\":\"budget_fallback\""),
                std::string::npos);
      EXPECT_NE(json.find("\"inexact\":true"), std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(saw_fallback)
      << "no query hit the 1-world budget; dataset too easy for the test";
}

TEST(ExplainTest, NarrativeMentionsVerdictAndStages) {
  const std::vector<UncertainString> collection = SmallDataset(40, 17);
  Result<SimilaritySearcher> searcher = MakeSearcher(collection);
  ASSERT_TRUE(searcher.ok());
  Result<ExplainResult> result = searcher->Explain(collection[0]);
  ASSERT_TRUE(result.ok());
  const std::string text =
      RenderExplainNarrative(*searcher, collection[0], *result);
  EXPECT_NE(text.find("explain:"), std::string::npos) << text;
  EXPECT_NE(text.find("verdict:"), std::string::npos) << text;
}

}  // namespace
}  // namespace ujoin
