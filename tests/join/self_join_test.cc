#include "join/self_join.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace ujoin {
namespace {

std::set<std::pair<uint32_t, uint32_t>> PairSet(const SelfJoinResult& result) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (const JoinPair& p : result.pairs) out.insert({p.lhs, p.rhs});
  return out;
}

std::vector<UncertainString> SmallDataset(int size, double theta,
                                          uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = theta;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

// Every filter combination must return exactly the ground-truth result set.
struct VariantCase {
  const char* name;
  JoinOptions options;
};

class JoinVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(JoinVariantTest, MatchesExhaustiveGroundTruth) {
  JoinOptions options = GetParam().options;
  options.always_verify = true;  // exact probabilities for the comparison
  const Alphabet alphabet = Alphabet::Names();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<UncertainString> collection =
        SmallDataset(50, 0.25, seed);
    Result<SelfJoinResult> got =
        SimilaritySelfJoin(collection, alphabet, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<SelfJoinResult> truth =
        ExhaustiveSelfJoin(collection, alphabet, options);
    ASSERT_TRUE(truth.ok()) << truth.status().ToString();
    EXPECT_EQ(PairSet(*got), PairSet(*truth))
        << GetParam().name << " seed=" << seed;
    // Exact probabilities must agree pairwise.
    std::map<std::pair<uint32_t, uint32_t>, double> truth_probs;
    for (const JoinPair& p : truth->pairs) {
      truth_probs[{p.lhs, p.rhs}] = p.probability;
    }
    for (const JoinPair& p : got->pairs) {
      const std::pair<uint32_t, uint32_t> key(p.lhs, p.rhs);
      ASSERT_TRUE(truth_probs.count(key));
      EXPECT_NEAR(p.probability, truth_probs[key], 1e-9);
      EXPECT_TRUE(p.exact);
      EXPECT_GT(p.probability, options.tau);
      EXPECT_LT(p.lhs, p.rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, JoinVariantTest,
    ::testing::Values(VariantCase{"QFCT", JoinOptions::Qfct(2, 0.1)},
                      VariantCase{"QCT", JoinOptions::Qct(2, 0.1)},
                      VariantCase{"QFT", JoinOptions::Qft(2, 0.1)},
                      VariantCase{"FCT", JoinOptions::Fct(2, 0.1)},
                      VariantCase{"QFCT_k1", JoinOptions::Qfct(1, 0.05)},
                      VariantCase{"QFCT_k3", JoinOptions::Qfct(3, 0.2)},
                      VariantCase{"QFCT_q2", JoinOptions::Qfct(2, 0.1, 2)},
                      VariantCase{"QFCT_q4", JoinOptions::Qfct(2, 0.1, 4)}),
    [](const ::testing::TestParamInfo<VariantCase>& param_info) {
      return param_info.param.name;
    });

TEST(SelfJoinTest, CdfAcceptedPairsCarryCertifiedLowerBounds) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(60, 0.2, 7);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = false;  // allow CDF accepts
  Result<SelfJoinResult> fast =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(fast.ok());
  options.always_verify = true;
  Result<SelfJoinResult> exact =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(PairSet(*fast), PairSet(*exact));
  std::map<std::pair<uint32_t, uint32_t>, double> exact_probs;
  for (const JoinPair& p : exact->pairs) {
    exact_probs[{p.lhs, p.rhs}] = p.probability;
  }
  for (const JoinPair& p : fast->pairs) {
    const std::pair<uint32_t, uint32_t> key(p.lhs, p.rhs);
    EXPECT_GT(p.probability, options.tau);
    if (!p.exact) {
      // CDF lower bound must under-approximate the exact probability.
      EXPECT_LE(p.probability, exact_probs[key] + 1e-9);
    } else {
      EXPECT_NEAR(p.probability, exact_probs[key], 1e-9);
    }
  }
}

TEST(SelfJoinTest, ConservativeQGramModeAlsoExact) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(50, 0.3, 21);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.qgram_probabilistic_pruning = false;
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(got.ok());
  Result<SelfJoinResult> truth =
      ExhaustiveSelfJoin(collection, alphabet, options);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(PairSet(*got), PairSet(*truth));
}

TEST(SelfJoinTest, AllVerifyMethodsGiveSameResults) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(30, 0.25, 9);
  JoinOptions trie_options = JoinOptions::Qfct(2, 0.1);
  JoinOptions compressed_options = trie_options;
  compressed_options.verify_method = VerifyMethod::kCompressedTrie;
  JoinOptions naive_options = trie_options;
  naive_options.verify_method = VerifyMethod::kNaive;
  Result<SelfJoinResult> trie =
      SimilaritySelfJoin(collection, alphabet, trie_options);
  Result<SelfJoinResult> compressed =
      SimilaritySelfJoin(collection, alphabet, compressed_options);
  Result<SelfJoinResult> naive =
      SimilaritySelfJoin(collection, alphabet, naive_options);
  ASSERT_TRUE(trie.ok() && compressed.ok() && naive.ok());
  EXPECT_EQ(PairSet(*trie), PairSet(*naive));
  EXPECT_EQ(PairSet(*trie), PairSet(*compressed));
}

TEST(SelfJoinTest, StatsFlowAddsUp) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(80, 0.2, 31);
  const JoinOptions options = JoinOptions::Qfct(2, 0.1);
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(out.ok());
  const JoinStats& stats = out->stats;
  EXPECT_GE(stats.length_compatible_pairs, stats.qgram_candidates);
  EXPECT_GE(stats.qgram_candidates, stats.freq_candidates);
  EXPECT_EQ(stats.freq_candidates,
            stats.cdf_accepted + stats.cdf_rejected + stats.cdf_undecided);
  EXPECT_EQ(stats.verified_pairs, stats.cdf_undecided);
  EXPECT_EQ(stats.result_pairs, static_cast<int64_t>(out->pairs.size()));
  EXPECT_GT(stats.peak_index_memory, 0u);
  EXPECT_GE(stats.total_time, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(SelfJoinTest, DuplicateStringsAreReported) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<UncertainString> s = UncertainString::Parse(
      "AC{(G,0.8),(T,0.2)}TACG", alphabet);
  ASSERT_TRUE(s.ok());
  const std::vector<UncertainString> collection = {*s, *s, *s};
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, alphabet, JoinOptions::Qfct(1, 0.5));
  ASSERT_TRUE(out.ok());
  // All three pairs are similar with probability ~1 (> 0.5).
  EXPECT_EQ(out->pairs.size(), 3u);
}

TEST(SelfJoinTest, EmptyAndSingletonCollections) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<SelfJoinResult> empty =
      SimilaritySelfJoin({}, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->pairs.empty());
  Result<SelfJoinResult> one = SimilaritySelfJoin(
      {UncertainString::FromDeterministic("ACGT")}, alphabet,
      JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(one->pairs.empty());
}

TEST(SelfJoinTest, RejectsEmptyStringsAndForeignSymbols) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<SelfJoinResult> empty_string = SimilaritySelfJoin(
      {UncertainString::FromDeterministic("ACG"), UncertainString()}, alphabet,
      JoinOptions::Qfct(1, 0.1));
  EXPECT_FALSE(empty_string.ok());
  Result<SelfJoinResult> foreign = SimilaritySelfJoin(
      {UncertainString::FromDeterministic("XYZ")}, alphabet,
      JoinOptions::Qfct(1, 0.1));
  EXPECT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelfJoinTest, TauZeroReportsAllPositiveProbabilityPairs) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(25, 0.3, 13);
  JoinOptions options = JoinOptions::Qfct(2, 0.0);
  options.always_verify = true;
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(collection, alphabet, options);
  Result<SelfJoinResult> truth =
      ExhaustiveSelfJoin(collection, alphabet, options);
  ASSERT_TRUE(got.ok() && truth.ok());
  EXPECT_EQ(PairSet(*got), PairSet(*truth));
  for (const JoinPair& p : got->pairs) EXPECT_GT(p.probability, 0.0);
}

TEST(SelfJoinTest, ResultsSortedAndUnique) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(60, 0.25, 17);
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, alphabet, JoinOptions::Qfct(2, 0.05));
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->pairs.size(); ++i) {
    EXPECT_TRUE(out->pairs[i - 1] < out->pairs[i]);
  }
}

}  // namespace
}  // namespace ujoin
