// Observability must not perturb the pipeline: an instrumented join returns
// byte-identical pairs and counters to an uninstrumented one, and the
// work-derived metrics (merged-list lengths, candidate α bounds, explored
// trie nodes) merge to bit-identical histograms for every thread count —
// the (wave, rank)-ordered fold contract of src/obs/.

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/cross_join.h"
#include "join/search.h"
#include "join/self_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SeededCollection(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 11;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

void ExpectIdenticalPairs(const std::vector<JoinPair>& a,
                          const std::vector<JoinPair>& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lhs, b[i].lhs) << label << " pair " << i;
    EXPECT_EQ(a[i].rhs, b[i].rhs) << label << " pair " << i;
    EXPECT_EQ(a[i].probability, b[i].probability) << label << " pair " << i;
    EXPECT_EQ(a[i].exact, b[i].exact) << label << " pair " << i;
  }
}

// The work-derived histograms: values depend only on what the pipeline
// computed, never on the clock, so the merged result must be bit-identical
// for every thread count (at a fixed wave size).
const obs::Hist kDeterministicHists[] = {
    obs::Hist::kMergedListLength,
    obs::Hist::kCandidateAlphaPpm,
    obs::Hist::kExploredTrieNodes,
};

// Tests asserting recorded *content* have nothing to observe when the
// instrumentation macros are compiled out (-DUJOIN_OBS=OFF); the
// determinism tests stay meaningful (all-zero recorders fold identically).
#ifdef UJOIN_OBS_DISABLED
#define UJOIN_SKIP_WITHOUT_OBS() \
  GTEST_SKIP() << "recording compiled out (-DUJOIN_OBS=OFF)"
#else
#define UJOIN_SKIP_WITHOUT_OBS() \
  do {                           \
  } while (0)
#endif

TEST(JoinObsTest, InstrumentationDoesNotChangeResults) {
  UJOIN_SKIP_WITHOUT_OBS();
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(90, 11);

  JoinOptions plain = JoinOptions::Qfct(2, 0.1);
  plain.threads = 2;
  plain.wave_size = 16;
  Result<SelfJoinResult> baseline = SimilaritySelfJoin(strings, alphabet,
                                                       plain);
  ASSERT_TRUE(baseline.ok());

  obs::Recorder recorder;
  obs::TraceRecorder trace;
  JoinOptions instrumented = plain;
  instrumented.metrics = &recorder;
  instrumented.trace = &trace;
  Result<SelfJoinResult> observed =
      SimilaritySelfJoin(strings, alphabet, instrumented);
  ASSERT_TRUE(observed.ok());

  ExpectIdenticalPairs(baseline->pairs, observed->pairs, "instrumented");
  EXPECT_EQ(baseline->stats.verified_pairs, observed->stats.verified_pairs);
  EXPECT_EQ(baseline->stats.qgram_candidates, observed->stats.qgram_candidates);
  EXPECT_EQ(baseline->stats.index_stats.postings_scanned,
            observed->stats.index_stats.postings_scanned);

  // The recorder saw real work...
  EXPECT_GT(recorder.counter(obs::Counter::kProbes), 0);
  EXPECT_GT(recorder.counter(obs::Counter::kWaves), 0);
  EXPECT_EQ(recorder.counter(obs::Counter::kProbes),
            static_cast<int64_t>(strings.size()));
  EXPECT_GT(recorder.hist(obs::Hist::kMergedListLength).count(), 0);
  EXPECT_EQ(recorder.hist(obs::Hist::kVerifyLatencyNs).count(),
            baseline->stats.verified_pairs);
  EXPECT_EQ(recorder.gauge(obs::Gauge::kThreads), 2);
  EXPECT_EQ(recorder.gauge(obs::Gauge::kCollectionSize),
            static_cast<int64_t>(strings.size()));
  // ...and the trace captured the wave phases.
  EXPECT_GT(trace.num_events(), 0u);
  const std::string trace_json = trace.ToJson();
  for (const char* span : {"index_insert", "freq_summaries", "wave_probe",
                           "wave_merge", "probe", "qgram_probe"}) {
    EXPECT_NE(trace_json.find("\"name\":\"" + std::string(span) + "\""),
              std::string::npos)
        << span;
  }
}

TEST(JoinObsTest, FunnelAndWorldCountMatchPipelineStats) {
  UJOIN_SKIP_WITHOUT_OBS();
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(90, 11);

  obs::Recorder recorder;
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.threads = 2;
  options.wave_size = 16;
  options.metrics = &recorder;
  Result<SelfJoinResult> result = SimilaritySelfJoin(strings, alphabet,
                                                     options);
  ASSERT_TRUE(result.ok());
  const JoinStats& stats = result->stats;

  // The funnel counters are the JoinStats attribution, re-expressed as
  // entered/survived edges per filter stage.
  EXPECT_EQ(recorder.funnel_entered(obs::FunnelStage::kQgram),
            static_cast<int64_t>(stats.length_compatible_pairs));
  EXPECT_EQ(recorder.funnel_survived(obs::FunnelStage::kQgram),
            static_cast<int64_t>(stats.qgram_candidates));
  EXPECT_EQ(recorder.funnel_entered(obs::FunnelStage::kFreqDistance),
            static_cast<int64_t>(stats.qgram_candidates));
  EXPECT_EQ(recorder.funnel_survived(obs::FunnelStage::kFreqDistance),
            static_cast<int64_t>(stats.freq_candidates));
  EXPECT_EQ(recorder.funnel_entered(obs::FunnelStage::kCdfBound),
            static_cast<int64_t>(stats.freq_candidates));
  EXPECT_EQ(recorder.funnel_survived(obs::FunnelStage::kCdfBound),
            static_cast<int64_t>(stats.freq_candidates - stats.cdf_rejected));
  // Pairs the CDF bound accepts outright never reach the verifier, so the
  // verify stage sees only the undecided remainder.
  EXPECT_EQ(recorder.funnel_entered(obs::FunnelStage::kVerify),
            stats.verified_pairs);
  EXPECT_EQ(recorder.funnel_survived(obs::FunnelStage::kVerify),
            stats.result_pairs - stats.cdf_accepted);
  EXPECT_EQ(static_cast<int64_t>(result->pairs.size()), stats.result_pairs);
  // Monotone shrinking through every stage.
  for (int s = 0; s < obs::kNumFunnelStages; ++s) {
    const auto stage = static_cast<obs::FunnelStage>(s);
    EXPECT_GE(recorder.funnel_entered(stage),
              recorder.funnel_survived(stage))
        << obs::FunnelStageInfo(stage).name;
  }
  // World counts recorded once per verification, all positive.
  const obs::Histogram& worlds = recorder.hist(obs::Hist::kVerifyWorldCount);
  EXPECT_EQ(worlds.count(), static_cast<int64_t>(stats.verified_pairs));
  EXPECT_GT(worlds.min(), 0);
}

TEST(JoinObsTest, FunnelIsBitIdenticalAcrossThreadCounts) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(80, 29);

  std::vector<obs::Recorder> recorders;
  for (int threads : {1, 2, 4, 8}) {
    JoinOptions options = JoinOptions::Qfct(2, 0.15);
    options.threads = threads;
    options.wave_size = 16;
    obs::Recorder recorder;
    options.metrics = &recorder;
    Result<SelfJoinResult> result =
        SimilaritySelfJoin(strings, alphabet, options);
    ASSERT_TRUE(result.ok()) << threads;
    recorders.push_back(recorder);
  }
  for (size_t i = 1; i < recorders.size(); ++i) {
    for (int s = 0; s < obs::kNumFunnelStages; ++s) {
      const auto stage = static_cast<obs::FunnelStage>(s);
      EXPECT_EQ(recorders[i].funnel_entered(stage),
                recorders[0].funnel_entered(stage))
          << "threads run " << i << " stage "
          << obs::FunnelStageInfo(stage).name;
      EXPECT_EQ(recorders[i].funnel_survived(stage),
                recorders[0].funnel_survived(stage))
          << "threads run " << i << " stage "
          << obs::FunnelStageInfo(stage).name;
    }
    // The world-count histogram is work-derived too: bit-identical fold.
    EXPECT_TRUE(recorders[i].hist(obs::Hist::kVerifyWorldCount) ==
                recorders[0].hist(obs::Hist::kVerifyWorldCount))
        << "threads run " << i;
  }
}

TEST(JoinObsTest, ProbeSpanSamplingShrinksTracesDeterministically) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(90, 11);
  constexpr uint64_t kSeed = 0x5eed;

  auto run = [&](int threads, int64_t sample_n) {
    obs::TraceRecorder trace;
    if (sample_n > 1) trace.SetProbeSampling(sample_n, kSeed);
    JoinOptions options = JoinOptions::Qfct(2, 0.1);
    options.threads = threads;
    options.wave_size = 16;
    options.trace = &trace;
    Result<SelfJoinResult> result =
        SimilaritySelfJoin(strings, alphabet, options);
    EXPECT_TRUE(result.ok());
    return trace;
  };

  const obs::TraceRecorder full = run(2, 1);
  const obs::TraceRecorder sampled = run(2, 4);
  EXPECT_EQ(full.probes_seen(), static_cast<int64_t>(strings.size()));
  EXPECT_EQ(full.probes_sampled(), full.probes_seen());
  EXPECT_EQ(sampled.probes_seen(), full.probes_seen());
  // ~1-in-4 probes keep their spans; generous band for a 90-probe run.
  EXPECT_GT(sampled.probes_sampled(), 0);
  EXPECT_LT(sampled.probes_sampled(), full.probes_sampled() / 2);
  EXPECT_LT(sampled.num_events(), full.num_events());
  // Driver/wave spans always survive sampling.
  const std::string json = sampled.ToJson();
  for (const char* span : {"index_insert", "wave_probe", "wave_merge"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(span) + "\""),
              std::string::npos)
        << span;
  }
  EXPECT_NE(json.find("\"probe_span_sample_n\":4"), std::string::npos);

  // The sampling decision depends only on the global probe index, so the
  // sampled probe set — and the probe-span event count — is thread-count
  // invariant.
  for (int threads : {1, 4}) {
    const obs::TraceRecorder other = run(threads, 4);
    EXPECT_EQ(other.probes_sampled(), sampled.probes_sampled()) << threads;
    EXPECT_EQ(other.num_events(), sampled.num_events()) << threads;
  }
}

TEST(JoinObsTest, WorkHistogramsAreBitIdenticalAcrossThreadCounts) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(80, 29);

  std::vector<obs::Recorder> recorders;
  for (int threads : {1, 2, 4, 8}) {
    JoinOptions options = JoinOptions::Qfct(2, 0.15);
    options.threads = threads;
    options.wave_size = 16;
    obs::Recorder recorder;
    options.metrics = &recorder;
    Result<SelfJoinResult> result =
        SimilaritySelfJoin(strings, alphabet, options);
    ASSERT_TRUE(result.ok()) << threads;
    recorders.push_back(recorder);
  }
  for (size_t i = 1; i < recorders.size(); ++i) {
    for (obs::Hist h : kDeterministicHists) {
      EXPECT_TRUE(recorders[i].hist(h) == recorders[0].hist(h))
          << "threads run " << i << " hist " << obs::HistInfo(h).name;
    }
    for (int c = 0; c < obs::kNumCounters; ++c) {
      const obs::Counter counter = static_cast<obs::Counter>(c);
      // Wall-clock kernel timings (unit "ns") are work counters, not event
      // counters: their values depend on the machine and scheduling, so only
      // the unit-less event counts are bit-identical across thread counts.
      if (std::string_view(obs::CounterInfo(counter).unit) == "ns") continue;
      EXPECT_EQ(recorders[i].counter(counter), recorders[0].counter(counter))
          << "threads run " << i << " counter "
          << obs::CounterInfo(counter).name;
    }
    EXPECT_EQ(recorders[i].gauge(obs::Gauge::kCollectionSize),
              recorders[0].gauge(obs::Gauge::kCollectionSize));
  }
}

TEST(JoinObsTest, ProgressCallbackSeesMonotoneCompletion) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(60, 3);

  struct Progress {
    std::vector<JoinProgress> snapshots;
  } progress;
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.threads = 2;
  options.wave_size = 16;
  options.progress_fn = [](const JoinProgress& p, void* user) {
    static_cast<Progress*>(user)->snapshots.push_back(p);
  };
  options.progress_user = &progress;
  Result<SelfJoinResult> result = SimilaritySelfJoin(strings, alphabet,
                                                     options);
  ASSERT_TRUE(result.ok());

  ASSERT_FALSE(progress.snapshots.empty());
  uint64_t prev_processed = 0;
  for (const JoinProgress& p : progress.snapshots) {
    EXPECT_EQ(p.total, strings.size());
    EXPECT_GE(p.processed, prev_processed);
    EXPECT_LE(p.processed, p.total);
    EXPECT_GE(p.elapsed_seconds, 0.0);
    prev_processed = p.processed;
  }
  EXPECT_EQ(progress.snapshots.back().processed, strings.size());
  EXPECT_EQ(progress.snapshots.back().result_pairs, result->pairs.size());
}

TEST(JoinObsTest, SearchManyMetricsAreThreadCountInvariant) {
  UJOIN_SKIP_WITHOUT_OBS();
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> strings = SeededCollection(70, 17);
  const std::vector<UncertainString> queries = SeededCollection(12, 23);

  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(strings, alphabet, options);
  ASSERT_TRUE(searcher.ok());

  std::vector<obs::Recorder> recorders;
  std::vector<std::vector<std::vector<SearchHit>>> all_hits;
  for (int threads : {1, 2, 4}) {
    obs::Recorder recorder;
    JoinStats stats;
    Result<std::vector<std::vector<SearchHit>>> hits =
        searcher->SearchMany(queries, threads, &stats, &recorder);
    ASSERT_TRUE(hits.ok()) << threads;
    recorders.push_back(recorder);
    all_hits.push_back(*hits);
    EXPECT_EQ(recorder.counter(obs::Counter::kQueries),
              static_cast<int64_t>(queries.size()));
  }
  for (size_t i = 1; i < recorders.size(); ++i) {
    EXPECT_EQ(all_hits[i].size(), all_hits[0].size());
    for (size_t q = 0; q < all_hits[0].size(); ++q) {
      EXPECT_EQ(all_hits[i][q].size(), all_hits[0][q].size()) << q;
    }
    for (obs::Hist h : kDeterministicHists) {
      EXPECT_TRUE(recorders[i].hist(h) == recorders[0].hist(h))
          << obs::HistInfo(h).name;
    }
  }
}

TEST(JoinObsTest, CrossJoinRecordsMetricsAndTrace) {
  UJOIN_SKIP_WITHOUT_OBS();
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> left = SeededCollection(40, 31);
  const std::vector<UncertainString> right = SeededCollection(25, 37);

  obs::Recorder recorder;
  obs::TraceRecorder trace;
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.threads = 2;
  options.metrics = &recorder;
  options.trace = &trace;
  Result<CrossJoinResult> with_obs =
      SimilarityJoin(left, right, alphabet, options);
  ASSERT_TRUE(with_obs.ok());

  JoinOptions plain = JoinOptions::Qfct(2, 0.1);
  plain.threads = 2;
  Result<CrossJoinResult> baseline =
      SimilarityJoin(left, right, alphabet, plain);
  ASSERT_TRUE(baseline.ok());
  ExpectIdenticalPairs(baseline->pairs, with_obs->pairs, "cross");

  EXPECT_EQ(recorder.counter(obs::Counter::kProbes),
            static_cast<int64_t>(std::max(left.size(), right.size())));
  EXPECT_EQ(recorder.gauge(obs::Gauge::kCollectionSize),
            static_cast<int64_t>(left.size() + right.size()));
  EXPECT_GT(trace.num_events(), 0u);
  EXPECT_NE(trace.ToJson().find("\"index_build\""), std::string::npos);
}

}  // namespace
}  // namespace ujoin
