// Boundary behaviour of the join: degenerate thresholds, extreme k, and
// pathological collections.

#include <set>

#include <gtest/gtest.h>

#include "join/ujoin.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

TEST(JoinEdgeTest, KZeroMeansWorldEquality) {
  // Pr(ed <= 0) = Pr(R = S), the match probability.
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("A{(C,0.6),(G,0.4)}GT", dna),
      Parse("A{(C,0.5),(T,0.5)}GT", dna),
      Parse("ACGT", dna),
  };
  JoinOptions options = JoinOptions::Qfct(0, 0.2);
  options.always_verify = true;
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, options);
  ASSERT_TRUE(out.ok());
  // Pr(0=1) = 0.6*0.5 = 0.3; Pr(0=2) = 0.6; Pr(1=2) = 0.5.  All > 0.2.
  ASSERT_EQ(out->pairs.size(), 3u);
  for (const JoinPair& p : out->pairs) {
    EXPECT_NEAR(p.probability,
                MatchProbability(collection[p.lhs], collection[p.rhs]), 1e-9);
  }
}

TEST(JoinEdgeTest, HugeKMatchesEverythingWithCertainty) {
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("A{(C,0.6),(G,0.4)}", dna),
      Parse("TTTTT", dna),
      Parse("G", dna),
  };
  JoinOptions options = JoinOptions::Qfct(10, 0.5);
  options.always_verify = true;
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->pairs.size(), 3u);
  for (const JoinPair& p : out->pairs) {
    EXPECT_DOUBLE_EQ(p.probability, 1.0);
  }
}

TEST(JoinEdgeTest, TauOneYieldsNothing) {
  // Pr > 1 is impossible, even for identical deterministic strings.
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("ACGT", dna), Parse("ACGT", dna)};
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, JoinOptions::Qfct(2, 1.0));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->pairs.empty());
}

TEST(JoinEdgeTest, SingleCharacterStrings) {
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("{(A,0.5),(C,0.5)}", dna),
      Parse("A", dna),
      Parse("{(A,0.9),(G,0.1)}", dna),
  };
  JoinOptions options = JoinOptions::Qfct(0, 0.4);
  options.always_verify = true;
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, options);
  ASSERT_TRUE(out.ok());
  // Pr(0=1)=0.5 > 0.4; Pr(0=2)=0.5*0.9=0.45 > 0.4; Pr(1=2)=0.9 > 0.4.
  EXPECT_EQ(out->pairs.size(), 3u);
}

TEST(JoinEdgeTest, AllIdenticalUncertainStrings) {
  Alphabet dna = Alphabet::Dna();
  const UncertainString s = Parse("AC{(G,0.5),(T,0.5)}T{(A,0.5),(C,0.5)}", dna);
  const std::vector<UncertainString> collection(6, s);
  JoinOptions options = JoinOptions::Qfct(2, 0.5);
  options.always_verify = true;
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->pairs.size(), 15u);  // all C(6,2) pairs
  for (const JoinPair& p : out->pairs) {
    // Two independent copies differ in >2 positions rarely: every world
    // pair is within ed 2 unless both uncertain positions mismatch AND...
    // exact value: Pr(ed<=2) = 1 (at most 2 mismatching positions).
    EXPECT_DOUBLE_EQ(p.probability, 1.0);
  }
}

TEST(JoinEdgeTest, WidelyVaryingLengthsPruneByLengthWindow) {
  Alphabet dna = Alphabet::Dna();
  std::vector<UncertainString> collection;
  for (int len = 1; len <= 30; len += 4) {
    collection.push_back(
        UncertainString::FromDeterministic(
            std::string(static_cast<size_t>(len), 'A')));
  }
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(out.ok());
  // Lengths differ by >= 4 > k: nothing joins, and almost nothing should
  // even reach the filters.
  EXPECT_TRUE(out->pairs.empty());
  EXPECT_EQ(out->stats.length_compatible_pairs, 0);
}

TEST(JoinEdgeTest, TinyTauReportsEveryPositivePair) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(97);
  testing::RandomStringOptions opt;
  opt.min_length = 3;
  opt.max_length = 6;
  opt.theta = 0.4;
  std::vector<UncertainString> collection;
  for (int i = 0; i < 20; ++i) {
    collection.push_back(testing::RandomUncertainString(dna, opt, rng));
  }
  JoinOptions options = JoinOptions::Qfct(2, 0.0);
  options.always_verify = true;
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, options);
  ASSERT_TRUE(out.ok());
  // Ground truth: every pair with positive probability.
  size_t expected = 0;
  for (uint32_t i = 0; i < collection.size(); ++i) {
    for (uint32_t j = i + 1; j < collection.size(); ++j) {
      expected +=
          testing::BruteForceMatchProbability(collection[i], collection[j],
                                              2) > 0.0;
    }
  }
  EXPECT_EQ(out->pairs.size(), expected);
}

TEST(JoinEdgeTest, QLargerThanStringsStillWorks) {
  // q = 10 on strings of length ~5: m = k+1 segments of length ~1.
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("ACGTA", dna), Parse("ACGTT", dna), Parse("TTTTT", dna)};
  Result<SelfJoinResult> out = SimilaritySelfJoin(
      collection, dna, JoinOptions::Qfct(1, 0.5, /*q=*/10));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->pairs.size(), 1u);
  EXPECT_EQ(out->pairs[0].lhs, 0u);
  EXPECT_EQ(out->pairs[0].rhs, 1u);
}

TEST(JoinEdgeTest, StringsShorterThanKPlusOne) {
  // len <= k: partitioning clamps to len segments; every same-ballpark
  // string is a candidate and verification decides.
  Alphabet dna = Alphabet::Dna();
  const std::vector<UncertainString> collection = {
      Parse("AC", dna), Parse("CA", dna), Parse("A", dna), Parse("GGG", dna)};
  JoinOptions options = JoinOptions::Qfct(3, 0.5);
  options.always_verify = true;
  Result<SelfJoinResult> out =
      SimilaritySelfJoin(collection, dna, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->pairs.size(), 6u);  // everything within ed 3 of everything
}

}  // namespace
}  // namespace ujoin
