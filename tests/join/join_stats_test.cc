#include "join/join_stats.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/self_join.h"
#include "util/rng.h"

namespace ujoin {
namespace {

JoinStats RandomStats(Rng& rng) {
  JoinStats s;
  s.length_compatible_pairs = static_cast<int64_t>(rng.Uniform(1000));
  s.qgram_candidates = static_cast<int64_t>(rng.Uniform(1000));
  s.qgram_support_pruned = static_cast<int64_t>(rng.Uniform(1000));
  s.qgram_probability_pruned = static_cast<int64_t>(rng.Uniform(1000));
  s.freq_candidates = static_cast<int64_t>(rng.Uniform(1000));
  s.freq_lower_pruned = static_cast<int64_t>(rng.Uniform(1000));
  s.freq_upper_pruned = static_cast<int64_t>(rng.Uniform(1000));
  s.cdf_accepted = static_cast<int64_t>(rng.Uniform(1000));
  s.cdf_rejected = static_cast<int64_t>(rng.Uniform(1000));
  s.cdf_undecided = static_cast<int64_t>(rng.Uniform(1000));
  s.verified_pairs = static_cast<int64_t>(rng.Uniform(1000));
  s.result_pairs = static_cast<int64_t>(rng.Uniform(1000));
  s.qgram_time = rng.UniformDouble();
  s.freq_time = rng.UniformDouble();
  s.cdf_time = rng.UniformDouble();
  s.verify_time = rng.UniformDouble();
  s.index_build_time = rng.UniformDouble();
  s.total_time = rng.UniformDouble();
  s.peak_index_memory = static_cast<size_t>(rng.Uniform(1 << 20));
  s.index_stats.lists_scanned = static_cast<int64_t>(rng.Uniform(1000));
  s.index_stats.postings_scanned = static_cast<int64_t>(rng.Uniform(1000));
  s.index_stats.ids_touched = static_cast<int64_t>(rng.Uniform(1000));
  s.index_stats.support_pruned = static_cast<int64_t>(rng.Uniform(1000));
  s.index_stats.probability_pruned = static_cast<int64_t>(rng.Uniform(1000));
  s.index_stats.candidates = static_cast<int64_t>(rng.Uniform(1000));
  s.verify_stats.r_trie_nodes = static_cast<int64_t>(rng.Uniform(1000));
  s.verify_stats.explored_s_nodes = static_cast<int64_t>(rng.Uniform(1000));
  s.verify_stats.active_entries = static_cast<int64_t>(rng.Uniform(1000));
  s.verify_stats.world_pairs = static_cast<int64_t>(rng.Uniform(1000));
  return s;
}

TEST(JoinStatsMergeTest, CountersAndTimingsSumMemoryTakesMax) {
  JoinStats a;
  a.qgram_candidates = 5;
  a.verified_pairs = 3;
  a.result_pairs = 2;
  a.qgram_time = 0.5;
  a.verify_time = 1.25;
  a.peak_index_memory = 100;
  a.index_stats.postings_scanned = 7;
  a.verify_stats.r_trie_nodes = 11;

  JoinStats b;
  b.qgram_candidates = 4;
  b.verified_pairs = 6;
  b.result_pairs = 1;
  b.qgram_time = 0.25;
  b.verify_time = 0.75;
  b.peak_index_memory = 60;
  b.index_stats.postings_scanned = 13;
  b.verify_stats.r_trie_nodes = 17;

  a.Merge(b);
  EXPECT_EQ(a.qgram_candidates, 9);
  EXPECT_EQ(a.verified_pairs, 9);
  EXPECT_EQ(a.result_pairs, 3);
  EXPECT_DOUBLE_EQ(a.qgram_time, 0.75);
  EXPECT_DOUBLE_EQ(a.verify_time, 2.0);
  EXPECT_EQ(a.peak_index_memory, 100u);  // max, not sum
  EXPECT_EQ(a.index_stats.postings_scanned, 20);
  EXPECT_EQ(a.verify_stats.r_trie_nodes, 28);

  JoinStats c;
  c.peak_index_memory = 500;
  a.Merge(c);
  EXPECT_EQ(a.peak_index_memory, 500u);  // larger operand wins
}

TEST(JoinStatsMergeTest, MergingIntoDefaultIsIdentity) {
  Rng rng(99);
  const JoinStats original = RandomStats(rng);
  JoinStats merged;
  merged.Merge(original);
  EXPECT_EQ(merged.length_compatible_pairs, original.length_compatible_pairs);
  EXPECT_EQ(merged.qgram_candidates, original.qgram_candidates);
  EXPECT_EQ(merged.qgram_support_pruned, original.qgram_support_pruned);
  EXPECT_EQ(merged.qgram_probability_pruned,
            original.qgram_probability_pruned);
  EXPECT_EQ(merged.freq_candidates, original.freq_candidates);
  EXPECT_EQ(merged.freq_lower_pruned, original.freq_lower_pruned);
  EXPECT_EQ(merged.freq_upper_pruned, original.freq_upper_pruned);
  EXPECT_EQ(merged.cdf_accepted, original.cdf_accepted);
  EXPECT_EQ(merged.cdf_rejected, original.cdf_rejected);
  EXPECT_EQ(merged.cdf_undecided, original.cdf_undecided);
  EXPECT_EQ(merged.verified_pairs, original.verified_pairs);
  EXPECT_EQ(merged.result_pairs, original.result_pairs);
  EXPECT_DOUBLE_EQ(merged.qgram_time, original.qgram_time);
  EXPECT_DOUBLE_EQ(merged.freq_time, original.freq_time);
  EXPECT_DOUBLE_EQ(merged.cdf_time, original.cdf_time);
  EXPECT_DOUBLE_EQ(merged.verify_time, original.verify_time);
  EXPECT_DOUBLE_EQ(merged.index_build_time, original.index_build_time);
  EXPECT_DOUBLE_EQ(merged.total_time, original.total_time);
  EXPECT_EQ(merged.peak_index_memory, original.peak_index_memory);
  EXPECT_EQ(merged.index_stats.candidates, original.index_stats.candidates);
  EXPECT_EQ(merged.verify_stats.world_pairs, original.verify_stats.world_pairs);
}

// Property: folding N random "thread-local" stats into a total yields the
// field-wise sums (max for peak memory), independent of fold grouping.
TEST(JoinStatsMergeTest, FoldingEqualsFieldwiseSums) {
  Rng rng(7);
  std::vector<JoinStats> locals;
  for (int i = 0; i < 8; ++i) locals.push_back(RandomStats(rng));

  JoinStats sequential;
  for (const JoinStats& s : locals) sequential.Merge(s);

  // Fold in two halves, then merge the halves (associativity).
  JoinStats left, right;
  for (int i = 0; i < 4; ++i) left.Merge(locals[static_cast<size_t>(i)]);
  for (int i = 4; i < 8; ++i) right.Merge(locals[static_cast<size_t>(i)]);
  JoinStats grouped;
  grouped.Merge(left);
  grouped.Merge(right);

  int64_t expected_verified = 0;
  size_t expected_peak = 0;
  for (const JoinStats& s : locals) {
    expected_verified += s.verified_pairs;
    expected_peak = std::max(expected_peak, s.peak_index_memory);
  }
  EXPECT_EQ(sequential.verified_pairs, expected_verified);
  EXPECT_EQ(sequential.peak_index_memory, expected_peak);
  EXPECT_EQ(grouped.verified_pairs, expected_verified);
  EXPECT_EQ(grouped.peak_index_memory, expected_peak);
  EXPECT_EQ(grouped.qgram_candidates, sequential.qgram_candidates);
  EXPECT_EQ(grouped.index_stats.postings_scanned,
            sequential.index_stats.postings_scanned);
  EXPECT_EQ(grouped.verify_stats.active_entries,
            sequential.verify_stats.active_entries);
}

// Property on the real pipeline: the parallel self-join folds per-probe
// stats with Merge; its pair-flow counters must equal the sequential
// (threads = 1, wave = 1) run's counters.
TEST(JoinStatsMergeTest, MergedThreadLocalStatsEqualSequentialPairFlow) {
  DatasetOptions data;
  data.kind = DatasetOptions::Kind::kNames;
  data.size = 70;
  data.theta = 0.25;
  data.seed = 5;
  data.min_length = 4;
  data.max_length = 10;
  data.max_uncertain_positions = 4;
  const Dataset dataset = GenerateDataset(data);

  JoinOptions sequential_options = JoinOptions::Qfct(2, 0.1);
  sequential_options.threads = 1;
  sequential_options.wave_size = 1;
  Result<SelfJoinResult> sequential =
      SimilaritySelfJoin(dataset.strings, dataset.alphabet,
                         sequential_options);
  ASSERT_TRUE(sequential.ok());

  JoinOptions parallel_options = JoinOptions::Qfct(2, 0.1);
  parallel_options.threads = 4;
  parallel_options.wave_size = 16;
  Result<SelfJoinResult> parallel = SimilaritySelfJoin(
      dataset.strings, dataset.alphabet, parallel_options);
  ASSERT_TRUE(parallel.ok());

  const JoinStats& s = sequential->stats;
  const JoinStats& p = parallel->stats;
  EXPECT_EQ(p.length_compatible_pairs, s.length_compatible_pairs);
  EXPECT_EQ(p.qgram_candidates, s.qgram_candidates);
  EXPECT_EQ(p.freq_candidates, s.freq_candidates);
  EXPECT_EQ(p.freq_lower_pruned, s.freq_lower_pruned);
  EXPECT_EQ(p.freq_upper_pruned, s.freq_upper_pruned);
  EXPECT_EQ(p.cdf_accepted, s.cdf_accepted);
  EXPECT_EQ(p.cdf_rejected, s.cdf_rejected);
  EXPECT_EQ(p.cdf_undecided, s.cdf_undecided);
  EXPECT_EQ(p.verified_pairs, s.verified_pairs);
  EXPECT_EQ(p.result_pairs, s.result_pairs);
}

TEST(JoinStatsTest, FilterTimeExcludesIndexBuild) {
  JoinStats s;
  s.qgram_time = 1.0;
  s.freq_time = 2.0;
  s.cdf_time = 4.0;
  s.index_build_time = 8.0;
  EXPECT_DOUBLE_EQ(s.FilterTime(), 7.0);  // filters only, not index build
}

TEST(JoinStatsTest, ToStringReportsIndexBuildOnItsOwnLine) {
  JoinStats s;
  s.index_build_time = 0.125;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("index-build[s]: 0.1250"), std::string::npos) << text;
  // The per-stage time line no longer folds the build time in.
  EXPECT_EQ(text.find("index=0.1250"), std::string::npos) << text;
}

// ToJson must be deterministic: the same field values always serialize to
// the same bytes (fixed key order, shortest round-trip doubles).  This is
// what lets run reports be compared with string equality.
TEST(JoinStatsTest, ToJsonIsByteStable) {
  Rng rng(13);
  const JoinStats original = RandomStats(rng);
  const std::string first = original.ToJson();
  EXPECT_EQ(first, original.ToJson());

  // An independently built JoinStats with identical values serializes to
  // the identical bytes.
  JoinStats copy = original;
  EXPECT_EQ(copy.ToJson(), first);

  // The document carries its schema version and the top-level sections.
  EXPECT_NE(first.find("\"schema_version\":"), std::string::npos);
  for (const char* key : {"\"pairs\":", "\"time_seconds\":", "\"index\":",
                          "\"verify\":"}) {
    EXPECT_NE(first.find(key), std::string::npos) << key;
  }
}

// Invariant on a real sequential run: the wall total covers the measured
// sub-stages, so total >= filter + verify + index-build (all measured on
// the same thread with the same clock).
TEST(JoinStatsTest, TotalTimeCoversFilterVerifyAndBuild) {
  DatasetOptions data;
  data.kind = DatasetOptions::Kind::kNames;
  data.size = 60;
  data.theta = 0.25;
  data.seed = 19;
  data.min_length = 4;
  data.max_length = 10;
  data.max_uncertain_positions = 4;
  const Dataset dataset = GenerateDataset(data);

  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.threads = 1;
  Result<SelfJoinResult> result =
      SimilaritySelfJoin(dataset.strings, dataset.alphabet, options);
  ASSERT_TRUE(result.ok());
  const JoinStats& s = result->stats;
  EXPECT_GT(s.total_time, 0.0);
  EXPECT_GE(s.total_time + 1e-6,
            s.FilterTime() + s.verify_time + s.index_build_time);
}

}  // namespace
}  // namespace ujoin
