// Differential test (exactness of the wave-parallel self-join): on the same
// collection C, SimilaritySelfJoin(C) must report exactly the pairs of the
// independently implemented two-collection SimilarityJoin(C, C) restricted
// to lhs < rhs.  The two drivers share the filter theory but not the driver
// code (index-then-probe-all versus wave-batched scan with id limits), so
// agreement across randomized collections and all four paper variants is
// strong evidence both are exact.

#include <map>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/cross_join.h"
#include "join/self_join.h"

namespace ujoin {
namespace {

std::set<std::pair<uint32_t, uint32_t>> OrderedPairSet(
    const std::vector<JoinPair>& pairs) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (const JoinPair& p : pairs) {
    if (p.lhs < p.rhs) out.insert({p.lhs, p.rhs});
  }
  return out;
}

std::vector<UncertainString> RandomCollection(int size, double theta,
                                              uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = theta;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 11;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

struct VariantCase {
  const char* name;
  JoinOptions options;
};

class SelfCrossDifferentialTest : public ::testing::TestWithParam<VariantCase> {
};

TEST_P(SelfCrossDifferentialTest, SelfJoinEqualsCrossJoinOnSameCollection) {
  const Alphabet alphabet = Alphabet::Names();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const std::vector<UncertainString> collection =
        RandomCollection(45, 0.25, seed);

    JoinOptions options = GetParam().options;
    options.always_verify = true;  // exact probabilities on both paths
    options.threads = 4;           // exercise the parallel wave driver
    options.wave_size = 7;         // force several waves per run

    Result<SelfJoinResult> self =
        SimilaritySelfJoin(collection, alphabet, options);
    ASSERT_TRUE(self.ok()) << self.status().ToString();
    Result<CrossJoinResult> cross =
        SimilarityJoin(collection, collection, alphabet, options);
    ASSERT_TRUE(cross.ok()) << cross.status().ToString();

    EXPECT_EQ(OrderedPairSet(self->pairs), OrderedPairSet(cross->pairs))
        << GetParam().name << " seed=" << seed;

    // Exact probabilities must agree pairwise between the two drivers.
    std::map<std::pair<uint32_t, uint32_t>, double> cross_probs;
    for (const JoinPair& p : cross->pairs) {
      if (p.lhs < p.rhs) cross_probs[{p.lhs, p.rhs}] = p.probability;
    }
    for (const JoinPair& p : self->pairs) {
      ASSERT_LT(p.lhs, p.rhs);
      auto it = cross_probs.find({p.lhs, p.rhs});
      ASSERT_NE(it, cross_probs.end());
      EXPECT_NEAR(p.probability, it->second, 1e-9)
          << GetParam().name << " seed=" << seed << " pair=(" << p.lhs << ","
          << p.rhs << ")";
      EXPECT_TRUE(p.exact);
    }
  }
}

TEST_P(SelfCrossDifferentialTest, AgreesWithoutForcedVerification) {
  // Pair sets (not probabilities: CDF-accepted pairs carry lower bounds that
  // may differ between probe orientations) must still agree when the CDF
  // accept shortcut is active.
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = RandomCollection(60, 0.2, 9);

  JoinOptions options = GetParam().options;
  options.threads = 2;

  Result<SelfJoinResult> self =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(self.ok()) << self.status().ToString();
  Result<CrossJoinResult> cross =
      SimilarityJoin(collection, collection, alphabet, options);
  ASSERT_TRUE(cross.ok()) << cross.status().ToString();

  EXPECT_EQ(OrderedPairSet(self->pairs), OrderedPairSet(cross->pairs))
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SelfCrossDifferentialTest,
    ::testing::Values(VariantCase{"QFCT", JoinOptions::Qfct(2, 0.1)},
                      VariantCase{"QCT", JoinOptions::Qct(2, 0.1)},
                      VariantCase{"QFT", JoinOptions::Qft(2, 0.1)},
                      VariantCase{"FCT", JoinOptions::Fct(2, 0.1)}),
    [](const ::testing::TestParamInfo<VariantCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ujoin
