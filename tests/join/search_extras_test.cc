// Tests for SearchTopK and (parallel) SearchMany.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "testing/test_util.h"
#include "verify/verifier.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SmallDataset(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

TEST(SearchTopKTest, ReturnsMostProbableMatchesInOrder) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(60, 201);
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      collection, alphabet, JoinOptions::Qfct(2, 0.01));
  ASSERT_TRUE(searcher.ok());
  const UncertainString& query = collection[10];
  Result<std::vector<SearchHit>> all = searcher->SearchTopK(query, 1000);
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->size(), 1u);  // at least the string itself
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_GE((*all)[i - 1].probability, (*all)[i].probability);
  }
  // Every reported probability is exact and matches ground truth.
  for (const SearchHit& hit : *all) {
    EXPECT_TRUE(hit.exact);
    Result<double> truth =
        TrieVerifyProbability(query, collection[hit.id], 2);
    ASSERT_TRUE(truth.ok());
    EXPECT_NEAR(hit.probability, *truth, 1e-9);
  }
  // Truncation keeps the best prefix.
  const int k = std::min<int>(3, static_cast<int>(all->size()));
  Result<std::vector<SearchHit>> top = searcher->SearchTopK(query, k);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(static_cast<int>(top->size()), k);
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ((*top)[static_cast<size_t>(i)].id,
              (*all)[static_cast<size_t>(i)].id);
  }
}

TEST(SearchTopKTest, RejectsNonPositiveCount) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      {UncertainString::FromDeterministic("ACGT")}, alphabet,
      JoinOptions::Qfct(1, 0.1));
  ASSERT_TRUE(searcher.ok());
  EXPECT_FALSE(
      searcher->SearchTopK(UncertainString::FromDeterministic("ACGT"), 0)
          .ok());
}

TEST(SearchManyTest, SequentialAndParallelAgree) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(80, 202);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(collection, alphabet, options);
  ASSERT_TRUE(searcher.ok());
  const std::vector<UncertainString> queries = SmallDataset(25, 203);
  Result<std::vector<std::vector<SearchHit>>> sequential =
      searcher->SearchMany(queries, 1);
  Result<std::vector<std::vector<SearchHit>>> parallel =
      searcher->SearchMany(queries, 4);
  ASSERT_TRUE(sequential.ok() && parallel.ok());
  ASSERT_EQ(sequential->size(), queries.size());
  ASSERT_EQ(parallel->size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto& a = (*sequential)[q];
    const auto& b = (*parallel)[q];
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_NEAR(a[i].probability, b[i].probability, 1e-12);
    }
  }
}

TEST(SearchManyTest, MatchesSingleSearches) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(50, 204);
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      collection, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(searcher.ok());
  const std::vector<UncertainString> queries = SmallDataset(10, 205);
  Result<std::vector<std::vector<SearchHit>>> many =
      searcher->SearchMany(queries, 0);  // auto thread count
  ASSERT_TRUE(many.ok());
  for (size_t q = 0; q < queries.size(); ++q) {
    Result<std::vector<SearchHit>> single = searcher->Search(queries[q]);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*many)[q].size(), single->size());
    for (size_t i = 0; i < single->size(); ++i) {
      EXPECT_EQ((*many)[q][i].id, (*single)[i].id);
    }
  }
}

// The aggregated stats are folded in query order, so every count is
// identical for every thread count (only wall times may differ).
TEST(SearchManyTest, AggregatedStatsAreThreadCountInvariant) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(70, 206);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(collection, alphabet, options);
  ASSERT_TRUE(searcher.ok());
  const std::vector<UncertainString> queries = SmallDataset(20, 207);

  JoinStats sequential_stats;
  JoinStats parallel_stats;
  ASSERT_TRUE(searcher->SearchMany(queries, 1, &sequential_stats).ok());
  ASSERT_TRUE(searcher->SearchMany(queries, 4, &parallel_stats).ok());

  EXPECT_GT(sequential_stats.result_pairs, 0);
  EXPECT_EQ(sequential_stats.length_compatible_pairs,
            parallel_stats.length_compatible_pairs);
  EXPECT_EQ(sequential_stats.qgram_candidates,
            parallel_stats.qgram_candidates);
  EXPECT_EQ(sequential_stats.qgram_support_pruned,
            parallel_stats.qgram_support_pruned);
  EXPECT_EQ(sequential_stats.qgram_probability_pruned,
            parallel_stats.qgram_probability_pruned);
  EXPECT_EQ(sequential_stats.freq_candidates, parallel_stats.freq_candidates);
  EXPECT_EQ(sequential_stats.cdf_accepted, parallel_stats.cdf_accepted);
  EXPECT_EQ(sequential_stats.cdf_rejected, parallel_stats.cdf_rejected);
  EXPECT_EQ(sequential_stats.cdf_undecided, parallel_stats.cdf_undecided);
  EXPECT_EQ(sequential_stats.verified_pairs, parallel_stats.verified_pairs);
  EXPECT_EQ(sequential_stats.result_pairs, parallel_stats.result_pairs);
  EXPECT_EQ(sequential_stats.index_stats.lists_scanned,
            parallel_stats.index_stats.lists_scanned);
  EXPECT_EQ(sequential_stats.index_stats.postings_scanned,
            parallel_stats.index_stats.postings_scanned);
  EXPECT_EQ(sequential_stats.index_stats.ids_touched,
            parallel_stats.index_stats.ids_touched);
}

TEST(SearchManyTest, PropagatesQueryErrors) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      {UncertainString::FromDeterministic("ACGT")}, alphabet,
      JoinOptions::Qfct(1, 0.1));
  ASSERT_TRUE(searcher.ok());
  const std::vector<UncertainString> queries = {
      UncertainString::FromDeterministic("ACGT"),
      UncertainString(),  // invalid: empty
  };
  EXPECT_FALSE(searcher->SearchMany(queries, 2).ok());
}

TEST(SearchManyTest, EmptyQueryListIsFine) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      {UncertainString::FromDeterministic("ACGT")}, alphabet,
      JoinOptions::Qfct(1, 0.1));
  ASSERT_TRUE(searcher.ok());
  Result<std::vector<std::vector<SearchHit>>> out =
      searcher->SearchMany({}, 4);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

}  // namespace
}  // namespace ujoin
