#include "join/search.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "testing/test_util.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SmallDataset(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

std::set<uint32_t> GroundTruthHits(const UncertainString& query,
                                   const std::vector<UncertainString>& coll,
                                   int k, double tau) {
  std::set<uint32_t> hits;
  for (uint32_t id = 0; id < coll.size(); ++id) {
    Result<double> prob = TrieVerifyProbability(query, coll[id], k);
    UJOIN_CHECK(prob.ok());
    if (*prob > tau) hits.insert(id);
  }
  return hits;
}

TEST(SimilaritySearcherTest, FindsExactlyTheMatchingIds) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(60, 3);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(collection, alphabet, options);
  ASSERT_TRUE(searcher.ok());
  // Queries: a few collection members (guaranteed hits) plus fresh strings.
  for (uint32_t q = 0; q < 10; ++q) {
    const UncertainString& query = collection[q * 5];
    Result<std::vector<SearchHit>> hits = searcher->Search(query);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> got;
    for (const SearchHit& h : *hits) {
      got.insert(h.id);
      EXPECT_GT(h.probability, options.tau);
    }
    EXPECT_EQ(got,
              GroundTruthHits(query, collection, options.k, options.tau));
    EXPECT_TRUE(got.count(q * 5));  // a string always matches itself
  }
}

TEST(SimilaritySearcherTest, UncertainQueriesWork) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(50, 5);
  JoinOptions options = JoinOptions::Qfct(2, 0.05);
  options.always_verify = true;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(collection, alphabet, options);
  ASSERT_TRUE(searcher.ok());
  const std::vector<UncertainString> probes = SmallDataset(10, 77);
  for (const UncertainString& query : probes) {
    Result<std::vector<SearchHit>> hits = searcher->Search(query);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> got;
    for (const SearchHit& h : *hits) got.insert(h.id);
    EXPECT_EQ(got,
              GroundTruthHits(query, collection, options.k, options.tau));
  }
}

TEST(SimilaritySearcherTest, VariantsAgree) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(40, 11);
  const UncertainString query = collection[7];
  std::set<uint32_t> reference;
  for (const JoinOptions& options :
       {JoinOptions::Qfct(2, 0.1), JoinOptions::Qct(2, 0.1),
        JoinOptions::Qft(2, 0.1), JoinOptions::Fct(2, 0.1)}) {
    JoinOptions exact = options;
    exact.always_verify = true;
    Result<SimilaritySearcher> searcher =
        SimilaritySearcher::Create(collection, alphabet, exact);
    ASSERT_TRUE(searcher.ok());
    Result<std::vector<SearchHit>> hits = searcher->Search(query);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> got;
    for (const SearchHit& h : *hits) got.insert(h.id);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference);
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(SimilaritySearcherTest, QueryValidation) {
  const Alphabet alphabet = Alphabet::Dna();
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      {UncertainString::FromDeterministic("ACGT")}, alphabet,
      JoinOptions::Qfct(1, 0.1));
  ASSERT_TRUE(searcher.ok());
  EXPECT_FALSE(searcher->Search(UncertainString()).ok());
  EXPECT_FALSE(
      searcher->Search(UncertainString::FromDeterministic("XY")).ok());
}

TEST(SimilaritySearcherTest, SearchStatsPopulated) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SmallDataset(50, 19);
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      collection, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(searcher.ok());
  EXPECT_GT(searcher->IndexMemoryUsage(), 0u);
  JoinStats stats;
  Result<std::vector<SearchHit>> hits =
      searcher->Search(collection[0], &stats);
  ASSERT_TRUE(hits.ok());
  EXPECT_GT(stats.length_compatible_pairs, 0);
  EXPECT_EQ(stats.result_pairs, static_cast<int64_t>(hits->size()));
}

}  // namespace
}  // namespace ujoin
