#include "join/string_level_join.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "text/frequency.h"
#include "testing/test_util.h"
#include "util/rng.h"

namespace ujoin {
namespace {

std::vector<StringLevelUncertainString> SmallCollection(int size,
                                                        uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  const Dataset data = GenerateDataset(opt);
  std::vector<StringLevelUncertainString> out;
  for (const UncertainString& s : data.strings) {
    Result<StringLevelUncertainString> sl =
        StringLevelUncertainString::FromCharacterLevel(s);
    UJOIN_CHECK(sl.ok());
    out.push_back(std::move(sl).value());
  }
  return out;
}

std::set<std::pair<uint32_t, uint32_t>> BruteForce(
    const std::vector<StringLevelUncertainString>& collection, int k,
    double tau) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (uint32_t i = 0; i < collection.size(); ++i) {
    for (uint32_t j = i + 1; j < collection.size(); ++j) {
      if (StringLevelMatchProbability(collection[i], collection[j], k) > tau) {
        out.insert({i, j});
      }
    }
  }
  return out;
}

TEST(StringLevelJoinTest, MatchesBruteForce) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<StringLevelUncertainString> collection =
      SmallCollection(40, 61);
  StringLevelJoinOptions options;
  options.k = 2;
  options.tau = 0.1;
  Result<SelfJoinResult> got =
      StringLevelSelfJoin(collection, alphabet, options);
  ASSERT_TRUE(got.ok());
  std::set<std::pair<uint32_t, uint32_t>> got_pairs;
  for (const JoinPair& p : got->pairs) {
    got_pairs.insert({p.lhs, p.rhs});
    EXPECT_GT(p.probability, options.tau);
  }
  EXPECT_EQ(got_pairs, BruteForce(collection, options.k, options.tau));
}

TEST(StringLevelJoinTest, EarlyStopAndExactModesAgree) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<StringLevelUncertainString> collection =
      SmallCollection(40, 62);
  StringLevelJoinOptions early;
  early.k = 2;
  early.tau = 0.15;
  StringLevelJoinOptions exact = early;
  exact.early_stop_verification = false;
  Result<SelfJoinResult> a = StringLevelSelfJoin(collection, alphabet, early);
  Result<SelfJoinResult> b = StringLevelSelfJoin(collection, alphabet, exact);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->pairs.size(), b->pairs.size());
  for (size_t i = 0; i < a->pairs.size(); ++i) {
    EXPECT_EQ(a->pairs[i].lhs, b->pairs[i].lhs);
    EXPECT_EQ(a->pairs[i].rhs, b->pairs[i].rhs);
    EXPECT_LE(a->pairs[i].probability, b->pairs[i].probability + 1e-9);
  }
}

TEST(StringLevelJoinTest, MixedLengthCollections) {
  const Alphabet alphabet = Alphabet::Names();
  // Instances of different lengths — inexpressible character-level.
  auto make = [](std::vector<StringLevelUncertainString::Instance> insts) {
    Result<StringLevelUncertainString> s =
        StringLevelUncertainString::Create(std::move(insts));
    UJOIN_CHECK(s.ok());
    return std::move(s).value();
  };
  const std::vector<StringLevelUncertainString> collection = {
      make({{"jon smith", 0.7}, {"john smith", 0.3}}),
      make({{"john smith", 0.8}, {"jon smyth", 0.2}}),
      make({{"completely different", 1.0}}),
  };
  StringLevelJoinOptions options;
  options.k = 2;
  options.tau = 0.5;
  Result<SelfJoinResult> out =
      StringLevelSelfJoin(collection, alphabet, options);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->pairs.size(), 1u);
  EXPECT_EQ(out->pairs[0].lhs, 0u);
  EXPECT_EQ(out->pairs[0].rhs, 1u);
}

TEST(StringLevelJoinTest, FreqEnvelopeBoundIsSound) {
  Rng rng(63);
  const Alphabet dna = Alphabet::Dna();
  for (int trial = 0; trial < 100; ++trial) {
    // Random small pdfs; the envelope bound must never exceed the true
    // minimum fd over world pairs.
    auto random_pdf = [&]() {
      std::vector<StringLevelUncertainString::Instance> insts;
      const int n = static_cast<int>(rng.UniformInt(1, 3));
      double remaining = 1.0;
      for (int i = 0; i < n; ++i) {
        const double p =
            i + 1 == n ? remaining : remaining * (0.3 + 0.4 * rng.UniformDouble());
        remaining -= i + 1 == n ? 0.0 : p;
        std::string text = testing::RandomString(
            dna, static_cast<int>(rng.UniformInt(1, 6)), rng);
        // Texts must be distinct: retry by appending.
        for (const auto& prev : insts) {
          if (prev.text == text) text += "A";
        }
        insts.push_back({text, p});
      }
      Result<StringLevelUncertainString> s =
          StringLevelUncertainString::Create(std::move(insts));
      UJOIN_CHECK(s.ok());
      return std::move(s).value();
    };
    const StringLevelUncertainString a = random_pdf();
    const StringLevelUncertainString b = random_pdf();
    // Brute-force minimum frequency distance across world pairs.
    int min_fd = INT32_MAX;
    for (const auto& ia : a.instances()) {
      for (const auto& ib : b.instances()) {
        min_fd = std::min(
            min_fd, FrequencyDistance(MakeFrequencyVector(ia.text, dna).value(),
                                      MakeFrequencyVector(ib.text, dna).value()));
      }
    }
    // Envelope bound.
    std::vector<int> amin, amax, bmin, bmax;
    auto envelope = [&](const StringLevelUncertainString& s,
                        std::vector<int>* mn, std::vector<int>* mx) {
      for (int i = 0; i < s.num_instances(); ++i) {
        FrequencyVector f =
            MakeFrequencyVector(s.instance(i).text, dna).value();
        if (i == 0) {
          *mn = f;
          *mx = f;
        } else {
          for (size_t c = 0; c < f.size(); ++c) {
            (*mn)[c] = std::min((*mn)[c], f[c]);
            (*mx)[c] = std::max((*mx)[c], f[c]);
          }
        }
      }
    };
    envelope(a, &amin, &amax);
    envelope(b, &bmin, &bmax);
    EXPECT_LE(StringLevelFreqDistanceLowerBound(amin, amax, bmin, bmax),
              min_fd);
  }
}

}  // namespace
}  // namespace ujoin
