// Determinism guarantees of the wave-parallel self-join: the pair list
// (ids, probabilities, exactness flags) is byte-identical for every thread
// count and every wave size, and the result-side counters are equal too.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/self_join.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SeededCollection(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 11;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

// Bitwise pair-list equality: ids, probability (exact double identity, not
// approximate), and the exactness flag.
void ExpectIdenticalPairs(const SelfJoinResult& a, const SelfJoinResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.pairs.size(), b.pairs.size()) << label;
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].lhs, b.pairs[i].lhs) << label << " pair " << i;
    EXPECT_EQ(a.pairs[i].rhs, b.pairs[i].rhs) << label << " pair " << i;
    EXPECT_EQ(a.pairs[i].probability, b.pairs[i].probability)
        << label << " pair " << i;
    EXPECT_EQ(a.pairs[i].exact, b.pairs[i].exact) << label << " pair " << i;
  }
}

// Pair-flow counters (everything except wall times and raw index scan work,
// which legitimately varies with the wave size).  These must be equal to the
// sequential semantics for every (threads, wave_size) configuration.
void ExpectEqualPairFlow(const JoinStats& a, const JoinStats& b,
                         const std::string& label) {
  EXPECT_EQ(a.length_compatible_pairs, b.length_compatible_pairs) << label;
  EXPECT_EQ(a.qgram_candidates, b.qgram_candidates) << label;
  EXPECT_EQ(a.freq_candidates, b.freq_candidates) << label;
  EXPECT_EQ(a.freq_lower_pruned, b.freq_lower_pruned) << label;
  EXPECT_EQ(a.freq_upper_pruned, b.freq_upper_pruned) << label;
  EXPECT_EQ(a.cdf_accepted, b.cdf_accepted) << label;
  EXPECT_EQ(a.cdf_rejected, b.cdf_rejected) << label;
  EXPECT_EQ(a.cdf_undecided, b.cdf_undecided) << label;
  EXPECT_EQ(a.verified_pairs, b.verified_pairs) << label;
  EXPECT_EQ(a.result_pairs, b.result_pairs) << label;
  EXPECT_EQ(a.verify_stats.r_trie_nodes, b.verify_stats.r_trie_nodes) << label;
  EXPECT_EQ(a.verify_stats.explored_s_nodes, b.verify_stats.explored_s_nodes)
      << label;
  EXPECT_EQ(a.verify_stats.active_entries, b.verify_stats.active_entries)
      << label;
  EXPECT_EQ(a.verify_stats.world_pairs, b.verify_stats.world_pairs) << label;
}

// Full work-counter equality, including the index merge-scan counters —
// holds across thread counts at a fixed wave size.
void ExpectEqualWorkCounters(const JoinStats& a, const JoinStats& b,
                             const std::string& label) {
  ExpectEqualPairFlow(a, b, label);
  EXPECT_EQ(a.index_stats.lists_scanned, b.index_stats.lists_scanned) << label;
  EXPECT_EQ(a.index_stats.postings_scanned, b.index_stats.postings_scanned)
      << label;
  EXPECT_EQ(a.index_stats.ids_touched, b.index_stats.ids_touched) << label;
  EXPECT_EQ(a.index_stats.support_pruned, b.index_stats.support_pruned)
      << label;
  EXPECT_EQ(a.index_stats.probability_pruned, b.index_stats.probability_pruned)
      << label;
  EXPECT_EQ(a.index_stats.candidates, b.index_stats.candidates) << label;
  EXPECT_EQ(a.peak_index_memory, b.peak_index_memory) << label;
}

TEST(SelfJoinParallelTest, ThreadCountDoesNotChangeResultsOrStats) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SeededCollection(90, 11);
  for (int wave_size : {1, 3, 16, 1 << 20}) {
    JoinOptions base = JoinOptions::Qfct(2, 0.1);
    base.wave_size = wave_size;
    base.threads = 1;
    Result<SelfJoinResult> reference =
        SimilaritySelfJoin(collection, alphabet, base);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (int threads : {2, 4}) {
      JoinOptions options = base;
      options.threads = threads;
      Result<SelfJoinResult> got =
          SimilaritySelfJoin(collection, alphabet, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const std::string label = "threads=" + std::to_string(threads) +
                                " wave=" + std::to_string(wave_size);
      ExpectIdenticalPairs(*reference, *got, label);
      ExpectEqualWorkCounters(reference->stats, got->stats, label);
    }
  }
}

TEST(SelfJoinParallelTest, WaveSizeDoesNotChangeResultsOrPairFlow) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SeededCollection(90, 23);
  JoinOptions base = JoinOptions::Qfct(2, 0.1);
  base.wave_size = 1;  // the paper's insert-after-every-string scan
  base.threads = 1;
  Result<SelfJoinResult> reference =
      SimilaritySelfJoin(collection, alphabet, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int wave_size : {2, 5, 32, 1 << 20}) {
    for (int threads : {1, 4}) {
      JoinOptions options = base;
      options.wave_size = wave_size;
      options.threads = threads;
      Result<SelfJoinResult> got =
          SimilaritySelfJoin(collection, alphabet, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const std::string label = "threads=" + std::to_string(threads) +
                                " wave=" + std::to_string(wave_size);
      ExpectIdenticalPairs(*reference, *got, label);
      ExpectEqualPairFlow(reference->stats, got->stats, label);
    }
  }
}

TEST(SelfJoinParallelTest, AllVariantsDeterministicAcrossThreads) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SeededCollection(60, 37);
  const JoinOptions variants[] = {
      JoinOptions::Qfct(2, 0.1), JoinOptions::Qct(2, 0.1),
      JoinOptions::Qft(2, 0.1), JoinOptions::Fct(2, 0.1)};
  for (const JoinOptions& variant : variants) {
    JoinOptions base = variant;
    base.wave_size = 8;
    base.threads = 1;
    Result<SelfJoinResult> reference =
        SimilaritySelfJoin(collection, alphabet, base);
    ASSERT_TRUE(reference.ok());
    JoinOptions parallel = base;
    parallel.threads = 4;
    Result<SelfJoinResult> got =
        SimilaritySelfJoin(collection, alphabet, parallel);
    ASSERT_TRUE(got.ok());
    ExpectIdenticalPairs(*reference, *got, "variant");
    ExpectEqualWorkCounters(reference->stats, got->stats, "variant");
  }
}

TEST(SelfJoinParallelTest, AutoThreadsAndAutoWaveSizeWork) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SeededCollection(50, 41);
  JoinOptions reference_options = JoinOptions::Qfct(2, 0.1);
  reference_options.threads = 1;
  reference_options.wave_size = 1;
  Result<SelfJoinResult> reference =
      SimilaritySelfJoin(collection, alphabet, reference_options);
  ASSERT_TRUE(reference.ok());

  JoinOptions auto_options = JoinOptions::Qfct(2, 0.1);
  auto_options.threads = 0;    // hardware concurrency
  auto_options.wave_size = 0;  // adaptive default
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(collection, alphabet, auto_options);
  ASSERT_TRUE(got.ok());
  ExpectIdenticalPairs(*reference, *got, "auto");
  ExpectEqualPairFlow(reference->stats, got->stats, "auto");
}

TEST(SelfJoinParallelTest, ParallelRunStillMatchesExhaustiveGroundTruth) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> collection = SeededCollection(45, 53);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  options.threads = 4;
  options.wave_size = 6;
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(collection, alphabet, options);
  ASSERT_TRUE(got.ok());
  Result<SelfJoinResult> truth =
      ExhaustiveSelfJoin(collection, alphabet, options);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(got->pairs.size(), truth->pairs.size());
  for (size_t i = 0; i < got->pairs.size(); ++i) {
    EXPECT_EQ(got->pairs[i].lhs, truth->pairs[i].lhs);
    EXPECT_EQ(got->pairs[i].rhs, truth->pairs[i].rhs);
    EXPECT_NEAR(got->pairs[i].probability, truth->pairs[i].probability, 1e-9);
  }
}

TEST(SelfJoinParallelTest, ErrorsPropagateFromWorkerThreads) {
  // An invalid collection must surface the same status regardless of the
  // thread count (validation happens before the waves, but verification
  // failures inside workers must propagate too — exercised here via the
  // empty-string precondition).
  const Alphabet alphabet = Alphabet::Dna();
  std::vector<UncertainString> collection = {
      UncertainString::FromDeterministic("ACGT"), UncertainString()};
  JoinOptions options = JoinOptions::Qfct(1, 0.1);
  options.threads = 4;
  Result<SelfJoinResult> got =
      SimilaritySelfJoin(collection, alphabet, options);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ujoin
