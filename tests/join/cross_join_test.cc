#include "join/cross_join.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "testing/test_util.h"
#include "verify/verifier.h"

namespace ujoin {
namespace {

std::vector<UncertainString> SmallDataset(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

std::set<std::pair<uint32_t, uint32_t>> BruteForcePairs(
    const std::vector<UncertainString>& left,
    const std::vector<UncertainString>& right, int k, double tau) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (uint32_t j = 0; j < right.size(); ++j) {
      Result<double> prob = VerifyPairProbability(left[i], right[j], k);
      UJOIN_CHECK(prob.ok());
      if (*prob > tau) out.insert({i, j});
    }
  }
  return out;
}

TEST(CrossJoinTest, MatchesBruteForceGroundTruth) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> left = SmallDataset(30, 51);
  const std::vector<UncertainString> right = SmallDataset(45, 52);
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<CrossJoinResult> got =
      SimilarityJoin(left, right, alphabet, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::set<std::pair<uint32_t, uint32_t>> got_pairs;
  for (const JoinPair& p : got->pairs) {
    got_pairs.insert({p.lhs, p.rhs});
    EXPECT_LT(p.lhs, left.size());
    EXPECT_LT(p.rhs, right.size());
    EXPECT_GT(p.probability, options.tau);
  }
  EXPECT_EQ(got_pairs,
            BruteForcePairs(left, right, options.k, options.tau));
}

TEST(CrossJoinTest, OrientationIndependentOfWhichSideIsIndexed) {
  const Alphabet alphabet = Alphabet::Names();
  // `left` smaller than `right` and vice versa must both report pairs in
  // (left-index, right-index) orientation.
  const std::vector<UncertainString> small = SmallDataset(10, 53);
  const std::vector<UncertainString> large = SmallDataset(40, 53);
  const JoinOptions options = JoinOptions::Qfct(2, 0.1);
  Result<CrossJoinResult> a = SimilarityJoin(small, large, alphabet, options);
  Result<CrossJoinResult> b = SimilarityJoin(large, small, alphabet, options);
  ASSERT_TRUE(a.ok() && b.ok());
  std::set<std::pair<uint32_t, uint32_t>> a_pairs, b_flipped;
  for (const JoinPair& p : a->pairs) a_pairs.insert({p.lhs, p.rhs});
  for (const JoinPair& p : b->pairs) b_flipped.insert({p.rhs, p.lhs});
  EXPECT_EQ(a_pairs, b_flipped);
  // `small` is a seed-53 prefix of `large`, so each small string matches at
  // least its own copy in `large`.
  EXPECT_GE(a_pairs.size(), small.size());
}

TEST(CrossJoinTest, EmptySidesYieldNoPairs) {
  const Alphabet alphabet = Alphabet::Dna();
  const std::vector<UncertainString> some = {
      UncertainString::FromDeterministic("ACGT")};
  Result<CrossJoinResult> a =
      SimilarityJoin({}, some, alphabet, JoinOptions::Qfct(1, 0.1));
  Result<CrossJoinResult> b =
      SimilarityJoin(some, {}, alphabet, JoinOptions::Qfct(1, 0.1));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->pairs.empty());
  EXPECT_TRUE(b->pairs.empty());
}

TEST(CrossJoinTest, StatsAggregateAcrossProbes) {
  const Alphabet alphabet = Alphabet::Names();
  const std::vector<UncertainString> left = SmallDataset(20, 54);
  const std::vector<UncertainString> right = SmallDataset(20, 55);
  Result<CrossJoinResult> out =
      SimilarityJoin(left, right, alphabet, JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->stats.length_compatible_pairs, 0);
  EXPECT_EQ(out->stats.result_pairs,
            static_cast<int64_t>(out->pairs.size()));
  EXPECT_GT(out->stats.peak_index_memory, 0u);
}

}  // namespace
}  // namespace ujoin
