#include "obs/query_log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "obs/metrics.h"

namespace ujoin {
namespace obs {
namespace {

// One query's worth of recorder state, mirroring what SearchImpl records:
// the funnel chain, the verify world counts, and (for one variant) a
// budget fallback.
Recorder SeededQueryRecorder() {
  Recorder r;
  r.AddFunnel(FunnelStage::kQgram, 49, 4);
  r.AddFunnel(FunnelStage::kFreqDistance, 4, 4);
  r.AddFunnel(FunnelStage::kCdfBound, 4, 3);
  r.AddFunnel(FunnelStage::kVerify, 2, 2);
  r.RecordHist(Hist::kVerifyWorldCount, 50000);
  r.RecordHist(Hist::kVerifyWorldCount, 27250);
  return r;
}

// The request id is part of the schema (tools/validate_query_log.py
// recomputes it); pin the splitmix64 mixing with golden values.
TEST(QueryLogTest, RequestIdGoldenValues) {
  EXPECT_EQ(QueryRequestId(0, 1), 10451216379200822465ull);
  EXPECT_EQ(QueryRequestId(1, 1), 2324861979054413167ull);
  EXPECT_EQ(QueryRequestId(3, 7), 10740533222099876715ull);
  // Connection and seq occupy disjoint halves: no accidental collisions
  // between (c, s) and (s, c).
  EXPECT_NE(QueryRequestId(1, 2), QueryRequestId(2, 1));
}

TEST(QueryLogTest, MakeRecordFromRecorder) {
  const QueryLogRecord rec =
      MakeQueryLogRecord(SeededQueryRecorder(), /*connection=*/3, /*seq=*/7,
                         /*query_length=*/22, /*hits=*/3, /*error=*/false);
  EXPECT_EQ(rec.request_id, QueryRequestId(3, 7));
  EXPECT_EQ(rec.connection, 3);
  EXPECT_EQ(rec.seq, 7);
  EXPECT_EQ(rec.query_length, 22);
  EXPECT_EQ(rec.length_band, Histogram::BucketIndex(22));
  EXPECT_EQ(rec.hits, 3);
  EXPECT_FALSE(rec.error);
#ifndef UJOIN_OBS_DISABLED
  EXPECT_EQ(rec.funnel_entered[0], 49);
  EXPECT_EQ(rec.funnel_survived[0], 4);
  EXPECT_EQ(rec.candidates, 4);
  EXPECT_EQ(rec.verify_worlds, 77250);
#endif
  // Caller-overlaid fields start zeroed.
  EXPECT_EQ(rec.budget_fallbacks, 0);
  EXPECT_EQ(rec.total_ns, 0);
}

#ifndef UJOIN_OBS_DISABLED
// The JSONL line is byte-golden: key order and value formatting are the
// schema, shared with tools/validate_query_log.py.
TEST(QueryLogTest, RenderedLineIsByteGolden) {
  QueryLogRecord rec =
      MakeQueryLogRecord(SeededQueryRecorder(), 3, 7, 22, 3, false);
  rec.total_ns = 5;
  rec.verify_ns = 2;
  EXPECT_EQ(
      RenderQueryLogLine(rec),
      "{\"schema\":\"ujoin.query_log\",\"schema_version\":1,"
      "\"request_id\":10740533222099876715,\"connection\":3,\"seq\":7,"
      "\"query_length\":22,\"length_band\":5,\"funnel\":{"
      "\"qgram\":{\"entered\":49,\"survived\":4},"
      "\"freq_distance\":{\"entered\":4,\"survived\":4},"
      "\"cdf_bound\":{\"entered\":4,\"survived\":3},"
      "\"verify\":{\"entered\":2,\"survived\":2}},"
      "\"candidates\":4,\"verify_worlds\":77250,\"budget_fallbacks\":0,"
      "\"deadline_fallbacks\":0,\"hits\":3,\"status\":\"ok\","
      "\"inexact\":false,\"timing\":{\"total_ns\":5,\"verify_ns\":2}}\n");
}
#endif

TEST(QueryLogTest, DeterministicContentExcludesAttributionAndTiming) {
  QueryLogRecord a = MakeQueryLogRecord(SeededQueryRecorder(), 1, 1, 22, 3,
                                        false);
  QueryLogRecord b = MakeQueryLogRecord(SeededQueryRecorder(), 4, 9, 22, 3,
                                        false);
  a.total_ns = 111;
  b.total_ns = 999999;
  // Same query content, different connection/seq/wall-clock: the content
  // rendering must be identical (this is what makes the verify-worlds ring
  // client-count invariant).
  EXPECT_EQ(DeterministicContentJson(a), DeterministicContentJson(b));
  EXPECT_NE(RenderQueryLogLine(a), RenderQueryLogLine(b));

  b.hits = 4;
  EXPECT_NE(DeterministicContentJson(a), DeterministicContentJson(b));
}

TEST(QueryLogTest, ErrorRecordRendersErrorStatus) {
  const QueryLogRecord rec =
      MakeQueryLogRecord(Recorder{}, 2, 5, 0, 0, /*error=*/true);
  const std::string line = RenderQueryLogLine(rec);
  EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(line.find("\"hits\":0"), std::string::npos);
}

TEST(QueryLogTest, FileSinkWritesJsonl) {
  const std::string path =
      ::testing::TempDir() + "query_log_test_sink.jsonl";
  QueryLog log;
  ASSERT_TRUE(log.Open(path).ok());
  EXPECT_TRUE(log.is_open());
  // Double-open is a caller bug, reported not ignored.
  EXPECT_FALSE(log.Open(path).ok());
  for (int i = 1; i <= 3; ++i) {
    log.Write(MakeQueryLogRecord(SeededQueryRecorder(), 0, i, 22, 3, false));
  }
  EXPECT_EQ(log.records_written(), 3);
  ASSERT_TRUE(log.Close().ok());
  EXPECT_TRUE(log.Close().ok());  // idempotent

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("{\"schema\":\"ujoin.query_log\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(QueryLogTest, BufferFlushesAndDropsWhenMisused) {
  const std::string path =
      ::testing::TempDir() + "query_log_test_buffer.jsonl";
  QueryLog log;
  ASSERT_TRUE(log.Open(path).ok());
  QueryLogBuffer buffer(/*capacity=*/2);
  const QueryLogRecord rec =
      MakeQueryLogRecord(SeededQueryRecorder(), 0, 1, 22, 3, false);
  buffer.Add(rec);
  EXPECT_FALSE(buffer.full());
  buffer.Add(rec);
  EXPECT_TRUE(buffer.full());
  buffer.Add(rec);  // over capacity: dropped, not grown
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 1);
  buffer.FlushTo(&log);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(log.records_written(), 2);
  buffer.FlushTo(&log);            // empty flush is a no-op
  buffer.FlushTo(nullptr);         // null log just clears
  EXPECT_EQ(log.records_written(), 2);
  ASSERT_TRUE(log.Close().ok());
  std::remove(path.c_str());
}

QueryLogRecord RecordWithCost(int64_t verify_worlds, int64_t total_ns,
                              int64_t hits) {
  QueryLogRecord rec;
  rec.request_id = QueryRequestId(0, hits + 1);
  rec.seq = hits + 1;
  rec.verify_worlds = verify_worlds;
  rec.total_ns = total_ns;
  rec.hits = hits;
  return rec;
}

TEST(SlowQueryRingTest, KeepsWorstByKeyWorstFirst) {
  SlowQueryRing ring(SlowQueryRing::Key::kVerifyWorlds, /*capacity=*/3);
  for (int64_t w : {10, 70, 30, 50, 20, 60}) {
    ring.Offer(RecordWithCost(w, 0, w));
  }
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.record(0).verify_worlds, 70);
  EXPECT_EQ(ring.record(1).verify_worlds, 60);
  EXPECT_EQ(ring.record(2).verify_worlds, 50);

  SlowQueryRing latency(SlowQueryRing::Key::kLatencyNs, /*capacity=*/2);
  latency.Offer(RecordWithCost(1, 100, 1));
  latency.Offer(RecordWithCost(2, 900, 2));
  latency.Offer(RecordWithCost(3, 500, 3));
  ASSERT_EQ(latency.size(), 2u);
  EXPECT_EQ(latency.record(0).total_ns, 900);
  EXPECT_EQ(latency.record(1).total_ns, 500);
}

// The kept (key, content) multiset is a pure top-N of everything offered:
// any arrival order produces the same ring contents.  This is the property
// that makes the verify-worlds ring client-count invariant in the server.
TEST(SlowQueryRingTest, ContentsAreOfferOrderInvariant) {
  std::vector<QueryLogRecord> records;
  for (int i = 0; i < 12; ++i) {
    // Duplicate keys on purpose: ties are broken by content.
    records.push_back(RecordWithCost((i % 5) * 100, i, i));
  }
  const auto ring_contents = [&](const std::vector<int>& order) {
    SlowQueryRing ring(SlowQueryRing::Key::kVerifyWorlds, 4);
    for (int idx : order) ring.Offer(records[static_cast<size_t>(idx)]);
    std::string out;
    for (const QueryLogRecord& rec : ring.Records()) {
      out += DeterministicContentJson(rec);
      out += '\n';
    }
    return out;
  };
  std::vector<int> forward, reverse, strided;
  for (int i = 0; i < 12; ++i) forward.push_back(i);
  for (int i = 11; i >= 0; --i) reverse.push_back(i);
  for (int s = 0; s < 3; ++s) {
    for (int i = s; i < 12; i += 3) strided.push_back(i);
  }
  const std::string expected = ring_contents(forward);
  EXPECT_EQ(ring_contents(reverse), expected);
  EXPECT_EQ(ring_contents(strided), expected);
}

TEST(SlowQueryRingTest, RendersSlowQueriesPage) {
  SlowQueryRing by_worlds(SlowQueryRing::Key::kVerifyWorlds, 4);
  SlowQueryRing by_latency(SlowQueryRing::Key::kLatencyNs, 4);
  by_worlds.Offer(RecordWithCost(10, 5, 1));
  by_latency.Offer(RecordWithCost(10, 5, 1));
  const std::string page = RenderSlowQueriesPage(by_worlds, by_latency);
  EXPECT_EQ(page.rfind("{\"schema\":\"ujoin.slow_queries\","
                       "\"schema_version\":1,\"capacity\":4,", 0),
            0u)
      << page;
  EXPECT_NE(page.find("\"by_verify_worlds\":[{"), std::string::npos);
  EXPECT_NE(page.find("\"by_latency_ns\":[{"), std::string::npos);
  EXPECT_EQ(page.back(), '\n');

  // Empty rings still render a complete page.
  SlowQueryRing empty_a(SlowQueryRing::Key::kVerifyWorlds, 4);
  SlowQueryRing empty_b(SlowQueryRing::Key::kLatencyNs, 4);
  const std::string empty = RenderSlowQueriesPage(empty_a, empty_b);
  EXPECT_NE(empty.find("\"by_verify_worlds\":[]"), std::string::npos);
  EXPECT_NE(empty.find("\"by_latency_ns\":[]"), std::string::npos);
}

// Writes a real log through SearchMany for the ctest fixture that runs
// tools/validate_query_log.py against it (see tests/CMakeLists.txt) — the
// C++ renderer and the independent python validator must agree on every
// byte-level schema rule.
TEST(QueryLogTest, WritesSampleForValidator) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = 40;
  opt.theta = 0.25;
  opt.seed = 17;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 3;
  const std::vector<UncertainString> collection =
      GenerateDataset(opt).strings;
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  Result<SimilaritySearcher> searcher =
      SimilaritySearcher::Create(collection, Alphabet::Names(), options);
  ASSERT_TRUE(searcher.ok());

  QueryLog log;
  ASSERT_TRUE(log.Open("query_log_sample.jsonl").ok());
  const std::vector<UncertainString> queries(collection.begin(),
                                             collection.begin() + 10);
  JoinStats stats;
  ASSERT_TRUE(searcher
                  ->SearchMany(queries, /*threads=*/2, &stats,
                               /*metrics=*/nullptr, /*trace=*/nullptr,
                               /*limits=*/nullptr, &log)
                  .ok());
  // One hand-built error record too, so the validator's error-path checks
  // run against C++-rendered bytes.
  log.Write(MakeQueryLogRecord(Recorder{}, 1, 1, 0, 0, /*error=*/true));
  EXPECT_EQ(log.records_written(), 11);
  ASSERT_TRUE(log.Close().ok());
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
