#include "obs/exposition.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace ujoin {
namespace obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A small seeded recorder used by the golden test and the ctest-level
// python validator (see WritesSampleForValidator).
Recorder SeededRecorder() {
  Recorder r;
  r.AddCounter(Counter::kWaves, 3);
  r.AddCounter(Counter::kProbes, 48);
  r.SetGauge(Gauge::kThreads, 4);
  r.SetGauge(Gauge::kCollectionSize, 48);
  r.AddFunnel(FunnelStage::kQgram, 1000, 120);
  r.AddFunnel(FunnelStage::kFreqDistance, 120, 80);
  r.AddFunnel(FunnelStage::kCdfBound, 80, 30);
  r.AddFunnel(FunnelStage::kVerify, 25, 12);
  r.RecordHist(Hist::kVerifyLatencyNs, 0);
  r.RecordHist(Hist::kVerifyLatencyNs, 1);
  r.RecordHist(Hist::kVerifyLatencyNs, 900);
  r.RecordHist(Hist::kVerifyLatencyNs, 1500);
  r.RecordHist(Hist::kMergedListLength, 17);
  return r;
}

TEST(ExpositionTest, GoldenTextForSeededRecorder) {
  const std::string text = RenderPrometheusText(SeededRecorder());

  // Counter family: HELP + TYPE from the registry metadata, `_total` suffix.
  EXPECT_NE(text.find("# HELP ujoin_probes_total probes executed against "
                      "the segment index\n"
                      "# TYPE ujoin_probes_total counter\n"
                      "ujoin_probes_total 48\n"),
            std::string::npos);
  EXPECT_NE(text.find("ujoin_waves_total 3\n"), std::string::npos);
  // Gauges keep their registry name as-is.
  EXPECT_NE(text.find("# TYPE ujoin_threads gauge\nujoin_threads 4\n"),
            std::string::npos);
  // Funnel: one family, stage+edge labels, pipeline order.
  EXPECT_NE(
      text.find(
          "# TYPE ujoin_filter_funnel_candidates_total counter\n"
          "ujoin_filter_funnel_candidates_total{stage=\"qgram\","
          "edge=\"entered\"} 1000\n"
          "ujoin_filter_funnel_candidates_total{stage=\"qgram\","
          "edge=\"survived\"} 120\n"
          "ujoin_filter_funnel_candidates_total{stage=\"freq_distance\","
          "edge=\"entered\"} 120\n"),
      std::string::npos);
  EXPECT_NE(text.find("{stage=\"verify\",edge=\"survived\"} 12\n"),
            std::string::npos);
  // Histogram: log2 bucket b holds [2^(b-1), 2^b), so its inclusive `le`
  // bound is 2^b - 1; cumulative counts; terminal +Inf; _sum and _count.
  // Samples 0, 1, 900, 1500 land in buckets 0, 1, 10, 11.
  EXPECT_NE(
      text.find("# TYPE ujoin_verify_latency_ns histogram\n"
                "ujoin_verify_latency_ns_bucket{le=\"0\"} 1\n"
                "ujoin_verify_latency_ns_bucket{le=\"1\"} 2\n"
                "ujoin_verify_latency_ns_bucket{le=\"3\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("ujoin_verify_latency_ns_bucket{le=\"1023\"} 3\n"
                      "ujoin_verify_latency_ns_bucket{le=\"2047\"} 4\n"
                      "ujoin_verify_latency_ns_bucket{le=\"+Inf\"} 4\n"
                      "ujoin_verify_latency_ns_sum 2401\n"
                      "ujoin_verify_latency_ns_count 4\n"),
            std::string::npos);

  // Deterministic: same recorder, same bytes.
  EXPECT_EQ(text, RenderPrometheusText(SeededRecorder()));
}

TEST(ExpositionTest, EmptyRecorderRendersEveryFamilyValidly) {
  const std::string text = RenderPrometheusText(Recorder());
  // Every registry family is present even with no recorded data...
  for (int c = 0; c < kNumCounters; ++c) {
    const std::string family = std::string("ujoin_") +
                               CounterInfo(static_cast<Counter>(c)).name +
                               "_total";
    EXPECT_NE(text.find("# TYPE " + family + " counter\n" + family + " 0\n"),
              std::string::npos)
        << family;
  }
  for (int h = 0; h < kNumHists; ++h) {
    const std::string family =
        std::string("ujoin_") + HistInfo(static_cast<Hist>(h)).name;
    // ...and an empty histogram still carries its mandatory +Inf terminal.
    EXPECT_NE(text.find(family + "_bucket{le=\"+Inf\"} 0\n" + family +
                        "_sum 0\n" + family + "_count 0\n"),
              std::string::npos)
        << family;
  }
}

TEST(ExpositionTest, BucketBoundsMatchHistogramBuckets) {
  // One sample per power of two: each lands in its own bucket, and the `le`
  // label must be that bucket's exact inclusive upper bound 2^b - 1.
  Recorder r;
  r.RecordHist(Hist::kMergedListLength, 1);     // bucket 1, le=1
  r.RecordHist(Hist::kMergedListLength, 2);     // bucket 2, le=3
  r.RecordHist(Hist::kMergedListLength, 4);     // bucket 3, le=7
  r.RecordHist(Hist::kMergedListLength, 1024);  // bucket 11, le=2047
  const std::string text = RenderPrometheusText(r);
  EXPECT_NE(text.find("ujoin_merged_list_length_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ujoin_merged_list_length_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ujoin_merged_list_length_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ujoin_merged_list_length_bucket{le=\"2047\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("ujoin_merged_list_length_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  // No le beyond the highest non-empty bucket (before +Inf).
  EXPECT_EQ(text.find("ujoin_merged_list_length_bucket{le=\"4095\"}"),
            std::string::npos);
}

TEST(ExpositionTest, TextfileWriteIsAtomicAndByteIdentical) {
  const std::string path =
      ::testing::TempDir() + "/exposition_textfile_test.prom";
  const Recorder r = SeededRecorder();
  ASSERT_TRUE(WritePrometheusTextfile(r, path).ok());
  EXPECT_EQ(ReadFile(path), RenderPrometheusText(r));
  // The temp file was renamed into place, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Overwrite goes through the same tmp+rename path.
  Recorder updated = r;
  updated.AddCounter(Counter::kProbes, 1);
  ASSERT_TRUE(WritePrometheusTextfile(updated, path).ok());
  EXPECT_EQ(ReadFile(path), RenderPrometheusText(updated));
  std::remove(path.c_str());
}

// Writes a rendered page into the current working directory for the
// ctest-registered python format validator (tools/validate_exposition.py);
// see tests/CMakeLists.txt, `ujoin_exposition_validate`.
TEST(ExpositionTest, WritesSampleForValidator) {
  ASSERT_TRUE(
      WritePrometheusTextfile(SeededRecorder(), "exposition_sample.prom")
          .ok());
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
