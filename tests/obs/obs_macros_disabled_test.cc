// Regression for the -DUJOIN_OBS=OFF build: the disabled macro stubs must
// (a) not evaluate their arguments — recording must cost nothing when
// compiled out — and (b) still *use* them unevaluated, so a value computed
// only for recording does not trip -Wunused-variable under -DUJOIN_WERROR=ON
// (src/index/segment_index.cc broke exactly this way).
//
// Defining UJOIN_OBS_DISABLED before the first include gives this TU the
// OFF flavour of the macros regardless of how the suite was configured, so
// the regression is exercised by the ordinary tier-1 run.  Nothing else may
// be included above obs_macros.h or the header guard would hand us the
// enabled flavour.  (Guarded: the -DUJOIN_OBS=OFF configuration already
// defines it on the command line, and -Werror makes a redefinition fatal.)
#ifndef UJOIN_OBS_DISABLED
#define UJOIN_OBS_DISABLED
#endif
#include "obs/obs_macros.h"

#include <gtest/gtest.h>

namespace {

struct CountingRecorder {
  // Never called through the disabled macros; present so the test would
  // still compile if the macros started forwarding.
  void RecordHist(int, long) { ++calls; }
  void AddCounter(int, long) { ++calls; }
  void SetGauge(int, long) { ++calls; }
  int calls = 0;
};

TEST(ObsMacrosDisabledTest, ArgumentsAreNotEvaluated) {
  CountingRecorder rec;
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42L;
  };
  UJOIN_OBS_HIST(&rec, 0, expensive());
  UJOIN_OBS_COUNTER(&rec, 0, expensive());
  UJOIN_OBS_GAUGE(&rec, 0, expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(rec.calls, 0);
}

TEST(ObsMacrosDisabledTest, EnabledIsConstantFalseWithoutEvaluating) {
  CountingRecorder* rec = nullptr;
  bool entered = false;
  if (UJOIN_OBS_ENABLED(rec)) entered = true;
  EXPECT_FALSE(entered);
}

TEST(ObsMacrosDisabledTest, RecordOnlyValuesDoNotWarnAsUnused) {
  // Under -DUJOIN_WERROR=ON this test's job is done at compile time:
  // `only_for_recording` has no other use, so the macro stub must count as
  // one (the sizeof trick) or this TU fails to build.
  CountingRecorder rec;
  const long only_for_recording = 17;
  UJOIN_OBS_HIST(&rec, 0, only_for_recording);
  EXPECT_EQ(rec.calls, 0);
}

}  // namespace
