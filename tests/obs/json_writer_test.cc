#include "obs/json_writer.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ujoin {
namespace obs {
namespace {

TEST(JsonWriterTest, NestedContainersAndCommaPlacement) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("c");
  w.Bool(true);
  w.EndObject();
  w.EndArray();
  w.Key("d");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1,2,{"c":true}],"d":null})");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("obj");
  w.BeginObject();
  w.EndObject();
  w.Key("arr");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"obj":{},"arr":[]})");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter w;
  w.BeginArray();
  w.String("plain");
  w.String("quote\" backslash\\");
  w.String("tab\t newline\n return\r");
  w.String(std::string("nul\x01\x1f", 5));
  w.EndArray();
  EXPECT_EQ(w.str(),
            "[\"plain\",\"quote\\\" backslash\\\\\","
            "\"tab\\t newline\\n return\\r\",\"nul\\u0001\\u001f\"]");
}

TEST(JsonWriterTest, IntegersAndBooleans) {
  JsonWriter w;
  w.BeginArray();
  w.Int(0);
  w.Int(-42);
  w.Int(std::numeric_limits<int64_t>::min());
  w.UInt(std::numeric_limits<uint64_t>::max());
  w.Bool(false);
  w.EndArray();
  EXPECT_EQ(w.str(),
            "[0,-42,-9223372036854775808,18446744073709551615,false]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriterTest, RawValueSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject();
  w.Key("section");
  w.RawValue(R"({"x":1})");
  w.Key("next");
  w.Int(2);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"section":{"x":1},"next":2})");
}

// The double formatter must round-trip exactly: parsing the emitted text
// recovers the identical bits.  This is the property the byte-stable
// reports rely on.
TEST(JsonWriterTest, FormatDoubleRoundTripsExactly) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    // Mix magnitudes: uniform [0,1), scaled, and tiny values.
    double v = rng.UniformDouble();
    if (i % 3 == 1) v *= 1e9;
    if (i % 3 == 2) v *= 1e-9;
    if (i % 2 == 1) v = -v;
    const std::string text = JsonWriter::FormatDouble(v);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << text;
  }
  EXPECT_EQ(JsonWriter::FormatDouble(0.0), "0");
  EXPECT_EQ(std::strtod(JsonWriter::FormatDouble(0.1).c_str(), nullptr), 0.1);
}

// Determinism: the same value always formats to the same bytes.
TEST(JsonWriterTest, FormatDoubleIsDeterministic) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const double v = (rng.UniformDouble() - 0.5) * 1e6;
    EXPECT_EQ(JsonWriter::FormatDouble(v), JsonWriter::FormatDouble(v));
  }
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
