#include "obs/metrics.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "util/rng.h"

namespace ujoin {
namespace obs {
namespace {

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()), 63);
}

TEST(HistogramTest, BucketLowerBoundInvertsBucketIndex) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    const int64_t lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b);
    if (b >= 2) {
      EXPECT_EQ(Histogram::BucketIndex(lo - 1), b - 1);
    }
  }
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.Record(5);
  h.Record(100);
  h.Record(0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 105);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 1);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(100)), 1);
  EXPECT_EQ(h.bucket(0), 1);
}

TEST(HistogramTest, MergeAddsStateAndClearResets) {
  Histogram a, b;
  a.Record(3);
  a.Record(9);
  b.Record(1);
  b.Record(200);
  Histogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), 4);
  EXPECT_EQ(merged.sum(), 213);
  EXPECT_EQ(merged.min(), 1);
  EXPECT_EQ(merged.max(), 200);

  merged.Clear();
  EXPECT_EQ(merged, Histogram());
}

TEST(HistogramTest, PercentileIsWithinOnePowerOfTwoAndClamped) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  // p0..p100 are monotone, clamped to [min, max], and each estimate is the
  // lower bound of the bucket holding the true quantile.
  int64_t prev = 0;
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const int64_t est = h.Percentile(p);
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
    EXPECT_GE(est, prev);
    prev = est;
    const int64_t true_q =
        std::max<int64_t>(1, static_cast<int64_t>(p * 1000));
    EXPECT_LE(est, true_q);
    EXPECT_GT(est * 2, true_q / 2);
  }
  // Degenerate: single value.
  Histogram one;
  one.Record(777);
  EXPECT_EQ(one.Percentile(0.5), 777);
  EXPECT_EQ(one.Percentile(1.0), 777);
}

TEST(MetricRegistryTest, NamesAreUniqueAndWellFormed) {
  std::set<std::string> names;
  for (int i = 0; i < kNumHists; ++i) {
    const MetricInfo& info = HistInfo(static_cast<Hist>(i));
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_STRNE(info.unit, "");
    EXPECT_STRNE(info.help, "");
  }
  for (int i = 0; i < kNumCounters; ++i) {
    const MetricInfo& info = CounterInfo(static_cast<Counter>(i));
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
  }
  for (int i = 0; i < kNumGauges; ++i) {
    const MetricInfo& info = GaugeInfo(static_cast<Gauge>(i));
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
  }
  for (int i = 0; i < kNumFunnelStages; ++i) {
    const MetricInfo& info = FunnelStageInfo(static_cast<FunnelStage>(i));
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_STRNE(info.unit, "");
    EXPECT_STRNE(info.help, "");
  }
  for (const std::string& name : names) {
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    }
  }
}

TEST(RecorderTest, GaugeMergeTakesMaxCountersAdd) {
  Recorder a, b;
  a.SetGauge(Gauge::kThreads, 4);
  b.SetGauge(Gauge::kThreads, 2);
  a.AddCounter(Counter::kProbes, 10);
  b.AddCounter(Counter::kProbes, 5);
  a.Merge(b);
  EXPECT_EQ(a.gauge(Gauge::kThreads), 4);
  EXPECT_EQ(a.counter(Counter::kProbes), 15);

  // SetGauge itself keeps the maximum.
  Recorder c;
  c.SetGauge(Gauge::kWaveSize, 64);
  c.SetGauge(Gauge::kWaveSize, 32);
  EXPECT_EQ(c.gauge(Gauge::kWaveSize), 64);
}

TEST(RecorderTest, FunnelAccumulatesAndMergesPerStage) {
  Recorder a, b;
  a.AddFunnel(FunnelStage::kQgram, 100, 10);
  a.AddFunnel(FunnelStage::kQgram, 50, 5);
  b.AddFunnel(FunnelStage::kQgram, 7, 3);
  b.AddFunnel(FunnelStage::kVerify, 4, 2);
  a.Merge(b);
  EXPECT_EQ(a.funnel_entered(FunnelStage::kQgram), 157);
  EXPECT_EQ(a.funnel_survived(FunnelStage::kQgram), 18);
  EXPECT_EQ(a.funnel_entered(FunnelStage::kVerify), 4);
  EXPECT_EQ(a.funnel_survived(FunnelStage::kVerify), 2);
  EXPECT_EQ(a.funnel_entered(FunnelStage::kFreqDistance), 0);
  EXPECT_EQ(a.funnel_survived(FunnelStage::kCdfBound), 0);
}

// The determinism property the pipeline relies on: folding per-(wave, rank)
// recorders in ANY order produces a bit-identical Recorder — and therefore a
// byte-identical ToJson — because all state is integer sums and maxes.
TEST(RecorderTest, MergeIsOrderIndependentAndToJsonByteStable) {
  Rng rng(41);
  // Simulate 4 waves x 8 ranks of recorders with random workloads.
  std::vector<Recorder> locals;
  for (int wave = 0; wave < 4; ++wave) {
    for (int rank = 0; rank < 8; ++rank) {
      Recorder r;
      const int events = 1 + static_cast<int>(rng.Uniform(50));
      for (int e = 0; e < events; ++e) {
        r.RecordHist(Hist::kVerifyLatencyNs,
                     static_cast<int64_t>(rng.Uniform(1u << 20)));
        r.RecordHist(Hist::kMergedListLength,
                     static_cast<int64_t>(rng.Uniform(5000)));
        r.RecordHist(Hist::kCandidateAlphaPpm,
                     static_cast<int64_t>(rng.Uniform(1000001)));
      }
      r.AddCounter(Counter::kProbes, events);
      r.SetGauge(Gauge::kPeakIndexMemoryBytes,
                 static_cast<int64_t>(rng.Uniform(1u << 24)));
      for (int s = 0; s < kNumFunnelStages; ++s) {
        const int64_t entered = static_cast<int64_t>(rng.Uniform(1000));
        r.AddFunnel(static_cast<FunnelStage>(s), entered,
                    static_cast<int64_t>(rng.Uniform(
                        static_cast<uint64_t>(entered) + 1)));
      }
      locals.push_back(r);
    }
  }

  Recorder in_order;
  for (const Recorder& r : locals) in_order.Merge(r);
  const std::string reference_json = in_order.ToJson();

  // Shuffled fold orders — simulating 1/2/4/8-thread rank interleavings —
  // must all produce the identical recorder and identical bytes.
  Rng shuffle_rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Recorder> shuffled = locals;
    ujoin::testing::Shuffle(&shuffled, shuffle_rng);
    // Also vary the grouping: fold into `groups` partial sums first.
    const int groups = 1 << (trial % 4);  // 1, 2, 4, 8
    std::vector<Recorder> partial(static_cast<size_t>(groups));
    for (size_t i = 0; i < shuffled.size(); ++i) {
      partial[i % static_cast<size_t>(groups)].Merge(shuffled[i]);
    }
    Recorder total;
    for (const Recorder& p : partial) total.Merge(p);
    EXPECT_TRUE(total == in_order) << "trial " << trial;
    EXPECT_EQ(total.ToJson(), reference_json) << "trial " << trial;
  }
}

TEST(RecorderTest, ToJsonContainsEveryRegistryMetric) {
  Recorder r;
  r.RecordHist(Hist::kVerifyLatencyNs, 1500);
  r.AddCounter(Counter::kQueries, 2);
  r.SetGauge(Gauge::kThreads, 3);
  const std::string json = r.ToJson();
  for (int i = 0; i < kNumHists; ++i) {
    EXPECT_NE(json.find(HistInfo(static_cast<Hist>(i)).name),
              std::string::npos);
  }
  for (int i = 0; i < kNumCounters; ++i) {
    EXPECT_NE(json.find(CounterInfo(static_cast<Counter>(i)).name),
              std::string::npos);
  }
  for (int i = 0; i < kNumGauges; ++i) {
    EXPECT_NE(json.find(GaugeInfo(static_cast<Gauge>(i)).name),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"funnel\":"), std::string::npos);
  for (int i = 0; i < kNumFunnelStages; ++i) {
    const std::string key =
        std::string("\"") + FunnelStageInfo(static_cast<FunnelStage>(i)).name +
        "\":{\"entered\":";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
