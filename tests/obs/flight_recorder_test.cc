// Flight recorder unit tests: ring overwrite, byte-golden redacted dumps,
// the in-flight block the watchdog reads, torn-read safety under a live
// writer (the TSan leg's target), and the validator sample fixture
// (tools/validate_flight_record.py checks the bytes this test writes).

#include "obs/flight_recorder.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs_macros.h"
#include "util/check.h"

namespace ujoin {
namespace obs {
namespace {

// Local recorders are ~200 KiB of atomics; keep them off the stack.
std::unique_ptr<FlightRecorder> NewRecorder() {
  return std::make_unique<FlightRecorder>();
}

// Dumps `recorder` through the same fd path the crash handler uses and
// returns the bytes.
std::string DumpToString(const FlightRecorder& recorder,
                         const FlightDumpOptions& options) {
  std::FILE* f = std::tmpfile();
  UJOIN_CHECK(f != nullptr);
  recorder.DumpToFd(fileno(f), options);
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.append(chunk, n);
  }
  std::fclose(f);
  return out;
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(FlightRecorderTest, EventNamesMatchRegistryOrder) {
  const char* expected[kNumFlightEvents] = {
      "wave_start",   "wave_end",    "probe_begin",     "funnel_stage",
      "verify_begin", "query_begin", "query_end",       "batch_boundary",
      "conn_open",    "conn_close",  "conn_idle_close", "serve_query",
      "stall_captured",
  };
  for (int k = 0; k < kNumFlightEvents; ++k) {
    EXPECT_STREQ(FlightEventName(static_cast<FlightEvent>(k)), expected[k]);
  }
  EXPECT_STREQ(FlightEventName(static_cast<FlightEvent>(-1)), "unknown");
  EXPECT_STREQ(FlightEventName(static_cast<FlightEvent>(kNumFlightEvents)),
               "unknown");
}

TEST(FlightRecorderTest, RecordsEventsAndClaimsOneSlotPerThread) {
  auto recorder = NewRecorder();
  EXPECT_EQ(recorder->slots_used(), 0);
  recorder->RecordEvent(FlightEvent::kWaveStart, 0, 10);
  recorder->RecordEvent(FlightEvent::kProbeBegin, 0, 3);
  recorder->RecordEvent(FlightEvent::kWaveEnd, 0, 0);
  EXPECT_EQ(recorder->slots_used(), 1);
  EXPECT_EQ(recorder->dropped_events(), 0);

  const std::string dump = DumpToString(*recorder, FlightDumpOptions{});
  EXPECT_NE(dump.find("\"schema\":\"ujoin.flight_record\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"wave_start\":1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"probe_begin\":1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"recorded\":3"), std::string::npos) << dump;
  EXPECT_EQ(CountOccurrences(dump, "{\"seq\":"), 3) << dump;
}

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  auto recorder = NewRecorder();
  recorder->set_enabled(false);
  EXPECT_FALSE(recorder->enabled());
  recorder->RecordEvent(FlightEvent::kProbeBegin, 1, 2);
  EXPECT_EQ(recorder->slots_used(), 0);
  EXPECT_EQ(recorder->dropped_events(), 0);
  recorder->set_enabled(true);
  recorder->RecordEvent(FlightEvent::kProbeBegin, 1, 2);
  EXPECT_EQ(recorder->slots_used(), 1);
}

// The ring keeps the newest kEventsPerThread events; older ones are
// overwritten in place and vanish from the dump, while `recorded` keeps
// the lifetime count.
TEST(FlightRecorderTest, RingOverwriteKeepsNewestWindow) {
  auto recorder = NewRecorder();
  const int total = FlightRecorder::kEventsPerThread + 50;
  for (int i = 0; i < total; ++i) {
    recorder->RecordEvent(FlightEvent::kProbeBegin, i, 0);
  }
  const std::string dump = DumpToString(*recorder, FlightDumpOptions{});
  EXPECT_NE(dump.find("\"recorded\":178"), std::string::npos) << dump;
  EXPECT_EQ(CountOccurrences(dump, "{\"seq\":"),
            FlightRecorder::kEventsPerThread);
  // Oldest surviving event is seq 51 (1-based); 50 and older are gone.
  EXPECT_NE(dump.find("{\"seq\":51,"), std::string::npos);
  EXPECT_EQ(dump.find("{\"seq\":50,"), std::string::npos);
  EXPECT_NE(dump.find("{\"seq\":178,"), std::string::npos);
  // The payload words follow the overwrite: the newest event carries its
  // own `a`, not a stale one.
  EXPECT_NE(dump.find("{\"seq\":178,\"ts_ns\":"), std::string::npos);
  EXPECT_NE(dump.find("\"a\":177,\"b\":0}"), std::string::npos);
}

// Two recorders fed the same logical events dump byte-identically once the
// timing tier (ts_ns, os_tid) is redacted — the projection the serve smoke
// compares across client counts.
TEST(FlightRecorderTest, RedactedDumpIsByteGolden) {
  auto a = NewRecorder();
  auto b = NewRecorder();
  for (FlightRecorder* r : {a.get(), b.get()}) {
    r->RecordEvent(FlightEvent::kQueryBegin, 1'000'000, 4);
    r->RecordEvent(FlightEvent::kFunnelStage, 0, 37);
    r->RecordEvent(FlightEvent::kVerifyBegin, 512, 0);
    r->RecordEvent(FlightEvent::kQueryEnd, 3, 0);
  }
  FlightDumpOptions redacted;
  redacted.redact_timing = true;
  const std::string dump_a = DumpToString(*a, redacted);
  const std::string dump_b = DumpToString(*b, redacted);
  EXPECT_EQ(dump_a, dump_b);
  EXPECT_NE(dump_a.find("\"os_tid\":0"), std::string::npos);
  EXPECT_EQ(CountOccurrences(dump_a, "\"ts_ns\":0"), 4) << dump_a;
  // Unredacted dumps still agree on everything but the timing words.
  const std::string live = DumpToString(*a, FlightDumpOptions{});
  EXPECT_NE(live.find("\"a\":1000000,\"b\":4}"), std::string::npos);
}

TEST(FlightRecorderTest, InFlightBlockTracksQueryLifecycle) {
  auto recorder = NewRecorder();
  // Nothing in flight before the first begin event.
  recorder->RecordEvent(FlightEvent::kConnOpen, 7, 0);
  EXPECT_FALSE(recorder->ReadInFlight(0).in_flight);

  // Serve attribution is stamped before the query begins and survives it.
  recorder->RecordEvent(FlightEvent::kServeQuery, 7, 3);
  recorder->RecordEvent(FlightEvent::kQueryBegin, 5'000'000, 6);
  InFlightSnapshot snap = recorder->ReadInFlight(0);
  ASSERT_TRUE(snap.in_flight);
  EXPECT_EQ(snap.epoch % 2, 1);
  EXPECT_EQ(snap.deadline_ns, 5'000'000);
  EXPECT_EQ(snap.band, 6);
  EXPECT_EQ(snap.connection, 7);
  EXPECT_EQ(snap.seq, 3);
  EXPECT_EQ(snap.verify_worlds, 0);
  EXPECT_EQ(snap.funnel_stage, -1);
  EXPECT_GT(snap.begin_ns, 0);

  // Funnel progress refreshes the stage; verify-begin stamps the world
  // estimate and moves the stage to verification.
  recorder->RecordEvent(FlightEvent::kFunnelStage, 1, 12);
  EXPECT_EQ(recorder->ReadInFlight(0).funnel_stage, 1);
  recorder->RecordEvent(FlightEvent::kVerifyBegin, 123456, 0);
  snap = recorder->ReadInFlight(0);
  EXPECT_EQ(snap.verify_worlds, 123456);
  EXPECT_EQ(snap.funnel_stage, 3);

  recorder->RecordEvent(FlightEvent::kQueryEnd, 2, 0);
  EXPECT_FALSE(recorder->ReadInFlight(0).in_flight);

  // A new begin opens a fresh epoch and resets the per-query words, but
  // keeps the connection attribution.
  recorder->RecordEvent(FlightEvent::kQueryBegin, 0, 9);
  const InFlightSnapshot next = recorder->ReadInFlight(0);
  ASSERT_TRUE(next.in_flight);
  EXPECT_GT(next.epoch, snap.epoch);
  EXPECT_EQ(next.verify_worlds, 0);
  EXPECT_EQ(next.funnel_stage, -1);
  EXPECT_EQ(next.connection, 7);

  // Out-of-range slots read as idle, never as garbage.
  EXPECT_FALSE(recorder->ReadInFlight(-1).in_flight);
  EXPECT_FALSE(recorder->ReadInFlight(1).in_flight);
  EXPECT_FALSE(
      recorder->ReadInFlight(FlightRecorder::kMaxThreadSlots).in_flight);
}

// Waves use the same epoch protocol as queries: begin/end with the wave
// index as the band and no deadline.
TEST(FlightRecorderTest, InFlightBlockTracksWaves) {
  auto recorder = NewRecorder();
  recorder->RecordEvent(FlightEvent::kWaveStart, 2, 40);
  const InFlightSnapshot snap = recorder->ReadInFlight(0);
  ASSERT_TRUE(snap.in_flight);
  EXPECT_EQ(snap.band, 2);
  EXPECT_EQ(snap.deadline_ns, 0);
  recorder->RecordEvent(FlightEvent::kWaveEnd, 2, 0);
  EXPECT_FALSE(recorder->ReadInFlight(0).in_flight);
}

// A dropped end event (error path without the RAII guard) must not wedge
// the block: the next begin replaces the open epoch.
TEST(FlightRecorderTest, ReopenWithoutEndReplacesEpoch) {
  auto recorder = NewRecorder();
  recorder->RecordEvent(FlightEvent::kQueryBegin, 0, 1);
  const int64_t first = recorder->ReadInFlight(0).epoch;
  recorder->RecordEvent(FlightEvent::kQueryBegin, 0, 2);
  const InFlightSnapshot snap = recorder->ReadInFlight(0);
  ASSERT_TRUE(snap.in_flight);
  EXPECT_EQ(snap.epoch, first + 2);
  EXPECT_EQ(snap.band, 2);
}

// Concurrent dumps and in-flight reads against a live writer: the per-event
// seqlock turns every race into a skipped event, never a data race (this is
// the TSan leg's target) and never malformed output.
TEST(FlightRecorderTest, DumpAndReadRaceLiveWriterSafely) {
  auto recorder = NewRecorder();
  std::thread writer([&recorder] {
    for (int i = 0; i < 20000; ++i) {
      recorder->RecordEvent(FlightEvent::kQueryBegin, 1000, i % 8);
      recorder->RecordEvent(FlightEvent::kVerifyBegin, i, 0);
      recorder->RecordEvent(FlightEvent::kQueryEnd, i % 3, 0);
    }
  });
  for (int round = 0; round < 25; ++round) {
    const std::string dump = DumpToString(*recorder, FlightDumpOptions{});
    // Structurally whole even when racing: opens with the schema, closes
    // the threads array, and never emits a half-written event.
    ASSERT_EQ(dump.rfind("{\"schema\":\"ujoin.flight_record\"", 0), 0u);
    ASSERT_EQ(dump.substr(dump.size() - 3), "]}\n");
    ASSERT_EQ(CountOccurrences(dump, "{\"seq\":"),
              CountOccurrences(dump, ",\"b\":"));
    for (int slot = 0; slot < FlightRecorder::kMaxThreadSlots; ++slot) {
      const InFlightSnapshot snap = recorder->ReadInFlight(slot);
      if (snap.in_flight) {
        ASSERT_EQ(snap.deadline_ns, 1000);
        ASSERT_GE(snap.band, 0);
        ASSERT_LT(snap.band, 8);
      }
    }
  }
  writer.join();
  const std::string final_dump = DumpToString(*recorder, FlightDumpOptions{});
  EXPECT_NE(final_dump.find("\"query_begin\":20000"), std::string::npos);
  EXPECT_NE(final_dump.find("\"recorded\":60000"), std::string::npos);
}

// Writes the sample record tools/validate_flight_record.py checks (ctest
// fixture ujoin_flight_record_sample; working directory is the binary dir).
TEST(FlightRecorderTest, WritesSampleForValidator) {
  FlightRecorder* recorder = GlobalFlightRecorder();
  ASSERT_TRUE(recorder->enabled());
  // One of every kind, through the macro the production code uses, plus a
  // second thread so the multi-thread shape is exercised.
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kWaveStart, 0, 40);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kProbeBegin, 0, 7);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kFunnelStage, 0, 12);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kVerifyBegin, 512, 0);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kWaveEnd, 0, 0);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kConnOpen, 1, 0);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kServeQuery, 1, 1);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kQueryBegin, 2'000'000, 5);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kQueryEnd, 3, 0);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kBatchBoundary, 1, 0);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kConnIdleClose, 1, 250);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kConnClose, 1, 1);
  UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kStallCaptured, 0, 9'000'000);
  std::thread([] {
    UJOIN_OBS_FLIGHT_EVENT(FlightEvent::kProbeBegin, 1, 8);
  }).join();
  ASSERT_TRUE(DumpFlightRecord("flight_record_sample.json",
                               FlightDumpOptions{}));
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
