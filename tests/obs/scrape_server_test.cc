#include "obs/scrape_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ujoin {
namespace obs {
namespace {

// Minimal blocking HTTP/1.0 client: sends one GET, reads to EOF.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ScrapeServerTest, ServesMetricsHealthzAnd404) {
  ScrapeServer server;
  server.UpdateMetrics("ujoin_probes_total 7\n");
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(BodyOf(metrics), "ujoin_probes_total 7\n");

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  EXPECT_GE(server.requests_served(), 3);
  server.Stop();
}

TEST(ScrapeServerTest, UpdateMetricsIsVisibleToLaterScrapes) {
  ScrapeServer server;
  ASSERT_TRUE(server.Start(0).ok());
  // No snapshot pushed yet: /metrics serves the empty page, still 200.
  const std::string empty = HttpGet(server.port(), "/metrics");
  EXPECT_NE(empty.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(empty), "");

  server.UpdateMetrics("ujoin_waves_total 1\n");
  EXPECT_EQ(BodyOf(HttpGet(server.port(), "/metrics")),
            "ujoin_waves_total 1\n");
  server.UpdateMetrics("ujoin_waves_total 2\n");
  EXPECT_EQ(BodyOf(HttpGet(server.port(), "/metrics")),
            "ujoin_waves_total 2\n");
  server.Stop();
}

// Scrapes serve a consistent snapshot while the driver keeps pushing
// updates: every response body must be one of the pushed pages, never a
// torn mix.  Also the TSan exercise for the snapshot mutex.
TEST(ScrapeServerTest, ConcurrentScrapesAndUpdatesSeeWholePages) {
  ScrapeServer server;
  server.UpdateMetrics(std::string(1024, 'a') + "\n");
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();

  std::atomic<bool> done{false};
  std::thread updater([&server, &done] {
    for (char c = 'b'; c <= 'z'; ++c) {
      server.UpdateMetrics(std::string(1024, c) + "\n");
    }
    done.store(true);
  });

  int scrapes = 0;
  while (scrapes < 20 || !done.load()) {
    const std::string body = BodyOf(HttpGet(port, "/metrics"));
    ASSERT_EQ(body.size(), 1025u);
    // A whole page is one repeated character — a torn read would mix two.
    EXPECT_EQ(body.find_first_not_of(body[0]), body.size() - 1) << body[0];
    EXPECT_EQ(body.back(), '\n');
    ++scrapes;
  }
  updater.join();
  server.Stop();
}

TEST(ScrapeServerTest, DebugSlowPageServedAfterFirstPush) {
  ScrapeServer server;
  ASSERT_TRUE(server.Start(0).ok());
  // Until the serve layer pushes a page there is nothing to show: 404, so
  // a scraper can tell "no slow-query tracking here" from "empty rings".
  EXPECT_NE(HttpGet(server.port(), "/debug/slow").find("HTTP/1.0 404"),
            std::string::npos);

  server.UpdateDebugPage("{\"schema\":\"ujoin.slow_queries\"}\n");
  const std::string slow = HttpGet(server.port(), "/debug/slow");
  EXPECT_NE(slow.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(slow.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(BodyOf(slow), "{\"schema\":\"ujoin.slow_queries\"}\n");
  server.Stop();
}

TEST(ScrapeServerTest, HealthBodyIsReplaceable) {
  ScrapeServer server;
  ASSERT_TRUE(server.Start(0).ok());
  // Default stays the bare liveness probe (live_smoke.sh depends on it).
  const std::string plain = HttpGet(server.port(), "/healthz");
  EXPECT_NE(plain.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_EQ(BodyOf(plain), "ok\n");

  // The serve layer swaps in its build-info block; a JSON body switches
  // the content type.
  server.SetHealthBody("{\"status\":\"ok\",\"obs\":true}\n");
  const std::string json = HttpGet(server.port(), "/healthz");
  EXPECT_NE(json.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(json.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(BodyOf(json), "{\"status\":\"ok\",\"obs\":true}\n");
  server.Stop();
}

// The /debug/slow page has the same whole-page snapshot contract as
// /metrics: concurrent pushes never produce a torn response.
TEST(ScrapeServerTest, ConcurrentDebugPageUpdatesSeeWholePages) {
  ScrapeServer server;
  server.UpdateDebugPage(std::string(512, 'a') + "\n");
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();

  std::atomic<bool> done{false};
  std::thread updater([&server, &done] {
    for (char c = 'b'; c <= 'z'; ++c) {
      server.UpdateDebugPage(std::string(512, c) + "\n");
    }
    done.store(true);
  });

  int scrapes = 0;
  while (scrapes < 20 || !done.load()) {
    const std::string body = BodyOf(HttpGet(port, "/debug/slow"));
    ASSERT_EQ(body.size(), 513u);
    EXPECT_EQ(body.find_first_not_of(body[0]), body.size() - 1) << body[0];
    ++scrapes;
  }
  updater.join();
  server.Stop();
}

TEST(ScrapeServerTest, StopIsIdempotentAndRefusesRequestsAfter) {
  ScrapeServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int port = server.port();
  EXPECT_NE(HttpGet(port, "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
  server.Stop();  // second Stop is a no-op
  EXPECT_EQ(HttpGet(port, "/healthz"), "");
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
