#include "obs/report.h"
#include "obs/trace.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/simd.h"

namespace ujoin {
namespace obs {
namespace {

TEST(TraceRecorderTest, EmitsMetadataAndCompleteEvents) {
  TraceRecorder trace;
  trace.AddSpan("build", 1000, 2500, /*tid=*/0);
  SpanCollector worker(&trace, /*tid=*/2);
  worker.Span("probe", 5000, 1500);
  worker.Span("verify", 7000, 250);
  trace.Append(worker.events());
  EXPECT_EQ(trace.num_events(), 3u);

  const std::string json = trace.ToJson();
  // Chrome trace-event envelope.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Thread-name metadata for both referenced tids.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 1\""), std::string::npos);  // tid 2 = rank 1
  // Complete ("X") events with microsecond timestamps (1000 ns = 1 us).
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);
}

TEST(TraceRecorderTest, DisabledSpanCollectorRecordsNothing) {
  SpanCollector disabled;
  EXPECT_EQ(disabled.NowNs(), 0);
  disabled.Span("ignored", 0, 10);
  EXPECT_TRUE(disabled.events().empty());
}

TEST(TraceRecorderTest, MetadataRecordsSamplingRateAndProbeCounts) {
  // Default: no sampling configured — metadata still present, rate 1.
  TraceRecorder trace;
  EXPECT_NE(trace.ToJson().find("\"metadata\":{\"probe_span_sample_n\":1,"
                                "\"probes_seen\":0,\"probes_sampled\":0}"),
            std::string::npos);

  trace.SetProbeSampling(/*n=*/4, /*seed=*/123);
  int64_t sampled = 0;
  for (int64_t i = 0; i < 100; ++i) {
    const bool keep = trace.SampleProbe(i);
    trace.NoteProbe(keep);
    if (keep) ++sampled;
  }
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"probe_span_sample_n\":4,\"probes_seen\":100,"
                      "\"probes_sampled\":" +
                      std::to_string(sampled) + "}"),
            std::string::npos);
  // 1-in-4 over 100 probes: the seeded decision lands near 25 kept.
  EXPECT_GT(sampled, 10);
  EXPECT_LT(sampled, 45);
}

TEST(TraceRecorderTest, SampleProbeIsDeterministicPerIndexAndSeed) {
  TraceRecorder a, b;
  a.SetProbeSampling(8, 42);
  b.SetProbeSampling(8, 42);
  // Same (seed, index) -> same decision, regardless of query order.  This
  // is what makes sampled traces identical across thread counts: the
  // decision is a pure function of the global probe index.
  std::vector<bool> reverse_order;
  for (int64_t i = 999; i >= 0; --i) reverse_order.push_back(b.SampleProbe(i));
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.SampleProbe(i),
              reverse_order[static_cast<size_t>(999 - i)])
        << i;
  }
  // A different seed yields a different decision set.
  TraceRecorder c;
  c.SetProbeSampling(8, 43);
  int64_t differs = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (c.SampleProbe(i) != a.SampleProbe(i)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(TraceRecorderTest, SamplingRateOneKeepsEveryProbe) {
  TraceRecorder trace;
  trace.SetProbeSampling(1, 7);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(trace.SampleProbe(i));
  }
}

TEST(TraceRecorderTest, SamplingReducesKeptProbesRoughlyNFold) {
  for (const int64_t n : {2, 4, 16}) {
    TraceRecorder trace;
    trace.SetProbeSampling(n, 99);
    int64_t kept = 0;
    const int64_t total = 4000;
    for (int64_t i = 0; i < total; ++i) {
      if (trace.SampleProbe(i)) ++kept;
    }
    // Expect total/n kept, within a generous 2x band either way.
    EXPECT_GT(kept, total / (2 * n)) << "n=" << n;
    EXPECT_LT(kept, 2 * total / n) << "n=" << n;
  }
}

TEST(TraceRecorderTest, WriteFileProducesParsableDocument) {
  TraceRecorder trace;
  trace.AddSpan("stage", 0, 1000, /*tid=*/0);
  const std::string path = ::testing::TempDir() + "/ujoin_trace_test.json";
  ASSERT_TRUE(trace.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), trace.ToJson());
  EXPECT_FALSE(trace.WriteFile("/nonexistent-dir/x/y.json").ok());
}

TEST(RunReportTest, EnvelopeHasSchemaAndSections) {
  const std::string report =
      RenderRunReport("join", {{"options", R"({"k":2})"},
                               {"stats", R"({"pairs":5})"}});
  // The simd_isa value is machine metadata (which kernel dispatch the
  // producing process selected), so the expectation splices it in.
  EXPECT_EQ(report,
            std::string(R"({"schema":"ujoin.run_report","schema_version":1,)"
                        R"("command":"join","simd_isa":")") +
                simd::ActiveIsaName() +
                R"(","options":{"k":2},"stats":{"pairs":5}})");
}

TEST(RunReportTest, WriteRunReportRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ujoin_report_test.json";
  ASSERT_TRUE(WriteRunReport(path, "search", {{"metrics", "{}"}}).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), RenderRunReport("search", {{"metrics", "{}"}}));
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
