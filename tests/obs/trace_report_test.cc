#include "obs/report.h"
#include "obs/trace.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ujoin {
namespace obs {
namespace {

TEST(TraceRecorderTest, EmitsMetadataAndCompleteEvents) {
  TraceRecorder trace;
  trace.AddSpan("build", 1000, 2500, /*tid=*/0);
  SpanCollector worker(&trace, /*tid=*/2);
  worker.Span("probe", 5000, 1500);
  worker.Span("verify", 7000, 250);
  trace.Append(worker.events());
  EXPECT_EQ(trace.num_events(), 3u);

  const std::string json = trace.ToJson();
  // Chrome trace-event envelope.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Thread-name metadata for both referenced tids.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 1\""), std::string::npos);  // tid 2 = rank 1
  // Complete ("X") events with microsecond timestamps (1000 ns = 1 us).
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);
}

TEST(TraceRecorderTest, DisabledSpanCollectorRecordsNothing) {
  SpanCollector disabled;
  EXPECT_EQ(disabled.NowNs(), 0);
  disabled.Span("ignored", 0, 10);
  EXPECT_TRUE(disabled.events().empty());
}

TEST(TraceRecorderTest, WriteFileProducesParsableDocument) {
  TraceRecorder trace;
  trace.AddSpan("stage", 0, 1000, /*tid=*/0);
  const std::string path = ::testing::TempDir() + "/ujoin_trace_test.json";
  ASSERT_TRUE(trace.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), trace.ToJson());
  EXPECT_FALSE(trace.WriteFile("/nonexistent-dir/x/y.json").ok());
}

TEST(RunReportTest, EnvelopeHasSchemaAndSections) {
  const std::string report =
      RenderRunReport("join", {{"options", R"({"k":2})"},
                               {"stats", R"({"pairs":5})"}});
  EXPECT_EQ(report,
            R"({"schema":"ujoin.run_report","schema_version":1,)"
            R"("command":"join","options":{"k":2},"stats":{"pairs":5}})");
}

TEST(RunReportTest, WriteRunReportRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ujoin_report_test.json";
  ASSERT_TRUE(WriteRunReport(path, "search", {{"metrics", "{}"}}).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), RenderRunReport("search", {{"metrics", "{}"}}));
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
