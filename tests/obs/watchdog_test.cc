// Stall watchdog unit tests, driven deterministically: Configure + ScanOnce
// with explicit recorder-clock values, so thresholds, per-epoch dedupe, the
// content-sorted report ring, and the rendered /debug/stalls page are all
// checked without sleeping or racing the scan thread.

#include "obs/watchdog.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "util/check.h"

namespace ujoin {
namespace obs {
namespace {

class WatchdogTest : public ::testing::Test {
 protected:
  WatchdogTest()
      : recorder_(std::make_unique<FlightRecorder>()),
        watchdog_(recorder_.get()) {}

  // The calling thread's in-flight begin time: ScanOnce thresholds are
  // relative to it.
  int64_t BeginNs() {
    const InFlightSnapshot snap = recorder_->ReadInFlight(0);
    UJOIN_CHECK(snap.in_flight);
    return snap.begin_ns;
  }

  std::unique_ptr<FlightRecorder> recorder_;
  Watchdog watchdog_;
};

TEST_F(WatchdogTest, CapturesPastDeadlineMultiple) {
  WatchdogOptions options;
  options.deadline_multiple = 4.0;
  watchdog_.Configure(options);

  recorder_->RecordEvent(FlightEvent::kQueryBegin, /*deadline_ns=*/1000,
                         /*band=*/6);
  const int64_t begin = BeginNs();
  // At exactly the threshold: not yet a stall (strictly greater trips it).
  watchdog_.ScanOnce(begin + 4000);
  EXPECT_EQ(watchdog_.captures(), 0);
  watchdog_.ScanOnce(begin + 4001);
  EXPECT_EQ(watchdog_.captures(), 1);

  const std::vector<StallReport> reports = watchdog_.Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].band, 6);
  EXPECT_EQ(reports[0].deadline_ns, 1000);
  EXPECT_EQ(reports[0].threshold_ns, 4000);
  EXPECT_EQ(reports[0].elapsed_ns, 4001);
  EXPECT_EQ(reports[0].funnel_stage, -1);
  EXPECT_EQ(reports[0].connection, -1);

  // The capture itself is a flight event on the watchdog's (this) thread's
  // ring — the black box records its own alarms.
  // Slot 0 belongs to the stalled thread (also this thread here); the
  // registry total is the observable.
  recorder_->RecordEvent(FlightEvent::kQueryEnd, 0, 0);
  EXPECT_FALSE(recorder_->ReadInFlight(0).in_flight);
}

TEST_F(WatchdogTest, FlatThresholdCoversDeadlinelessWork) {
  WatchdogOptions options;
  options.stall_ns = 5000;
  watchdog_.Configure(options);

  recorder_->RecordEvent(FlightEvent::kWaveStart, /*wave=*/3, /*size=*/100);
  const int64_t begin = BeginNs();
  watchdog_.ScanOnce(begin + 5000);
  EXPECT_EQ(watchdog_.captures(), 0);
  watchdog_.ScanOnce(begin + 5001);
  EXPECT_EQ(watchdog_.captures(), 1);
  const std::vector<StallReport> reports = watchdog_.Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].band, 3);
  EXPECT_EQ(reports[0].deadline_ns, 0);
  EXPECT_EQ(reports[0].threshold_ns, 5000);
}

TEST_F(WatchdogTest, ZeroFlatThresholdNeverFlagsDeadlinelessWork) {
  watchdog_.Configure(WatchdogOptions{});  // stall_ns = 0
  recorder_->RecordEvent(FlightEvent::kWaveStart, 0, 10);
  watchdog_.ScanOnce(BeginNs() + 1'000'000'000'000);
  EXPECT_EQ(watchdog_.captures(), 0);
}

TEST_F(WatchdogTest, DedupesPerEpochAcrossTicks) {
  WatchdogOptions options;
  options.stall_ns = 1000;
  watchdog_.Configure(options);

  recorder_->RecordEvent(FlightEvent::kQueryBegin, 0, 2);
  const int64_t begin = BeginNs();
  // A stall that persists across many scan ticks yields one report.
  for (int tick = 1; tick <= 5; ++tick) {
    watchdog_.ScanOnce(begin + 2000 + tick);
  }
  EXPECT_EQ(watchdog_.captures(), 1);

  // A new query on the same slot is a new epoch: captured again.
  recorder_->RecordEvent(FlightEvent::kQueryEnd, 0, 0);
  recorder_->RecordEvent(FlightEvent::kQueryBegin, 0, 2);
  watchdog_.ScanOnce(BeginNs() + 2000);
  EXPECT_EQ(watchdog_.captures(), 2);
}

TEST_F(WatchdogTest, IdleAndFinishedWorkIsNeverFlagged) {
  WatchdogOptions options;
  options.stall_ns = 1;
  watchdog_.Configure(options);

  // Idle slot (events recorded, no open epoch).
  recorder_->RecordEvent(FlightEvent::kProbeBegin, 0, 0);
  watchdog_.ScanOnce(FlightRecorder::NowNs() + 1'000'000'000);
  EXPECT_EQ(watchdog_.captures(), 0);

  // A query that ends before the scan is not a stall.
  recorder_->RecordEvent(FlightEvent::kQueryBegin, 0, 1);
  recorder_->RecordEvent(FlightEvent::kQueryEnd, 1, 0);
  watchdog_.ScanOnce(FlightRecorder::NowNs() + 1'000'000'000);
  EXPECT_EQ(watchdog_.captures(), 0);
}

// The report ring is bounded and content-sorted: with more stalls than
// kMaxReports, the retained set is the smallest content keys, independent
// of arrival order.
TEST_F(WatchdogTest, RingKeepsSmallestContentKeys) {
  WatchdogOptions options;
  options.stall_ns = 1000;
  watchdog_.Configure(options);

  // Bands arrive in descending order, so the retained-ascending result can
  // only come from content sorting, not arrival order.
  const int total = Watchdog::kMaxReports + 4;
  for (int i = 0; i < total; ++i) {
    const int64_t band = total - 1 - i;
    recorder_->RecordEvent(FlightEvent::kQueryBegin, 0, band);
    watchdog_.ScanOnce(BeginNs() + 2000);
    recorder_->RecordEvent(FlightEvent::kQueryEnd, 0, 0);
  }
  EXPECT_EQ(watchdog_.captures(), total);
  const std::vector<StallReport> reports = watchdog_.Reports();
  ASSERT_EQ(reports.size(), static_cast<size_t>(Watchdog::kMaxReports));
  for (int i = 0; i < Watchdog::kMaxReports; ++i) {
    EXPECT_EQ(reports[static_cast<size_t>(i)].band, i);
  }
}

TEST_F(WatchdogTest, CaptureRecordsFlightEventAndPushesPage) {
  WatchdogOptions options;
  options.stall_ns = 1000;
  std::string pushed;
  watchdog_.set_push_fn([&pushed](const std::string& page) { pushed = page; });
  watchdog_.Configure(options);

  recorder_->RecordEvent(FlightEvent::kServeQuery, 4, 9);
  recorder_->RecordEvent(FlightEvent::kQueryBegin, 0, 5);
  watchdog_.ScanOnce(BeginNs() + 2000);
  ASSERT_EQ(watchdog_.captures(), 1);
  // The push carries the freshly rendered page, with serve attribution.
  EXPECT_NE(pushed.find("\"schema\":\"ujoin.stalls\""), std::string::npos);
  EXPECT_NE(pushed.find("\"connection\":4,\"seq\":9"), std::string::npos)
      << pushed;
  EXPECT_EQ(pushed, watchdog_.StallsJson());
  // The kStallCaptured event landed on the scanning thread's ring.
  recorder_->RecordEvent(FlightEvent::kQueryEnd, 0, 0);
}

// The page bytes are a pure function of the reports: golden-pinned here,
// shared with the serve smoke's non-timing projection.
TEST(StallsPageTest, RenderIsByteGolden) {
  EXPECT_EQ(RenderStallsPage({}, 0),
            "{\"schema\":\"ujoin.stalls\",\"schema_version\":1,"
            "\"captures\":0,\"stalls\":[]}");

  StallReport report;
  report.band = 5;
  report.funnel_stage = 3;  // FunnelStage::kVerify
  report.verify_worlds = 1'300'000'000;
  report.deadline_ns = 2'000'000;
  report.threshold_ns = 8'000'000;
  report.connection = 2;
  report.seq = 7;
  report.elapsed_ns = 9'000'001;
  EXPECT_EQ(RenderStallsPage({report}, 3),
            "{\"schema\":\"ujoin.stalls\",\"schema_version\":1,"
            "\"captures\":3,\"stalls\":[{\"band\":5,"
            "\"funnel_stage\":\"verify\",\"verify_worlds\":1300000000,"
            "\"deadline_ns\":2000000,\"threshold_ns\":8000000,"
            "\"connection\":2,\"seq\":7,\"elapsed_ns\":9000001}]}");

  // Out-of-range stages render as "none" (stalled before the funnel).
  report.funnel_stage = -1;
  EXPECT_NE(RenderStallsPage({report}, 1).find("\"funnel_stage\":\"none\""),
            std::string::npos);
}

// Start/Stop lifecycle: the thread scans on its own and a live stall is
// captured without any manual ScanOnce.  Uses a generous poll so the test
// stays fast; the stall is made unmissable (threshold 1 ns).
TEST(WatchdogThreadTest, BackgroundScanCapturesAndStops) {
  auto recorder = std::make_unique<FlightRecorder>();
  recorder->RecordEvent(FlightEvent::kQueryBegin, 0, 1);

  Watchdog watchdog(recorder.get());
  WatchdogOptions options;
  options.stall_ns = 1;
  options.poll_ms = 1;
  watchdog.Start(options);
  // Second Start is a no-op while running.
  watchdog.Start(options);
  for (int i = 0; i < 2000 && watchdog.captures() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(watchdog.captures(), 1);
  watchdog.Stop();
  watchdog.Stop();  // idempotent
  const int64_t after_stop = watchdog.captures();
  recorder->RecordEvent(FlightEvent::kQueryEnd, 0, 0);
  recorder->RecordEvent(FlightEvent::kQueryBegin, 0, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(watchdog.captures(), after_stop);
}

}  // namespace
}  // namespace obs
}  // namespace ujoin
