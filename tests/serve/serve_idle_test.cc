// Regression tests for ServeOptions::idle_timeout_ms: a connection that
// goes quiet is closed at the poll tick that pushes it past the timeout,
// counted under serve_idle_closed_connections, and recorded as a
// conn_idle_close flight event — while connections that keep talking stay
// open, and the server keeps serving new connections afterwards.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "obs/metrics.h"
#include "serve/search_server.h"
#include "serve_test_util.h"

namespace ujoin {
namespace {

using serve::testing::LineClient;

class ServeIdleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetOptions opt;
    opt.kind = DatasetOptions::Kind::kNames;
    opt.size = 40;
    opt.theta = 0.15;
    opt.seed = 23;
    opt.max_uncertain_positions = 2;
    const Dataset dataset = GenerateDataset(opt);
    strings_ = dataset.strings;
    Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
        strings_, dataset.alphabet, JoinOptions::Qfct(2, 0.1));
    ASSERT_TRUE(searcher.ok());
    searcher_ =
        std::make_unique<SimilaritySearcher>(std::move(searcher).value());
  }

  int64_t IdleClosed(const serve::SearchServer& server) {
    return server.ServeMetrics().counter(
        obs::Counter::kServeIdleClosedConnections);
  }

  std::vector<UncertainString> strings_;
  std::unique_ptr<SimilaritySearcher> searcher_;
};

TEST_F(ServeIdleTest, SilentConnectionIsClosedAndCounted) {
  serve::ServeOptions options;
  // Wide enough that an active client (below) never trips it on a loaded
  // box, short enough that the idle close lands quickly.
  options.idle_timeout_ms = 1500;
  serve::SearchServer server(searcher_.get(), options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client(server.port(), /*recv_timeout_sec=*/30);
  ASSERT_TRUE(client.connected());
  const std::string query = strings_[0].ToString();

  // Activity resets the idle clock: two queries half a timeout apart both
  // answer, so a talking connection is never reaped.
  ASSERT_TRUE(client.SendLine(query));
  std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos) << response;
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_TRUE(client.SendLine(query));
  response = client.ReadLine();
  EXPECT_NE(response.find("\"seq\":2"), std::string::npos) << response;
  EXPECT_EQ(IdleClosed(server), 0);

  // Now go silent: the server closes its side once idle_timeout_ms of
  // empty poll ticks accumulate.
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(IdleClosed(server), 1);

  // The reap is per-connection, not per-server: a fresh connection is
  // admitted and served as usual.
  LineClient next(server.port(), /*recv_timeout_sec=*/30);
  ASSERT_TRUE(next.connected());
  ASSERT_TRUE(next.SendLine(query));
  response = next.ReadLine();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"seq\":1"), std::string::npos) << response;

  next.Close();
  client.Close();
  server.Stop();
  // The idle-closed connection still flushed its final batch: both its
  // requests are in the fold.
  EXPECT_EQ(server.ServeMetrics().counter(obs::Counter::kServeRequests), 3);
  EXPECT_EQ(IdleClosed(server), 1);
}

TEST_F(ServeIdleTest, ZeroTimeoutKeepsSilentConnectionsOpen) {
  serve::ServeOptions options;
  options.idle_timeout_ms = 0;  // historical behavior: wait for hang-up
  serve::SearchServer server(searcher_.get(), options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(strings_[0].ToString()));
  EXPECT_NE(client.ReadLine().find("\"status\":\"ok\""), std::string::npos);

  // Far longer than several poll ticks: still answering afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ASSERT_TRUE(client.SendLine(strings_[1].ToString()));
  EXPECT_NE(client.ReadLine().find("\"seq\":2"), std::string::npos);
  EXPECT_EQ(IdleClosed(server), 0);

  client.Close();
  server.Stop();
  EXPECT_EQ(IdleClosed(server), 0);
}

}  // namespace
}  // namespace ujoin
