#ifndef UJOIN_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define UJOIN_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <string>

#include "util/check.h"

namespace ujoin::serve::testing {

/// \brief Minimal blocking line-protocol client for the SearchServer tests:
/// connects to 127.0.0.1:port, sends raw bytes, reads newline-terminated
/// responses.  A receive timeout keeps a wedged server from hanging the
/// test binary past its ctest timeout.
class LineClient {
 public:
  explicit LineClient(int port, int recv_timeout_sec = 10) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    UJOIN_CHECK(fd_ >= 0);
    timeval timeout{};
    timeout.tv_sec = recv_timeout_sec;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  /// Sends raw bytes (append the '\n' yourself to finish a frame).
  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  /// Reads one newline-terminated response (the '\n' is kept, matching the
  /// renderers in serve/protocol.h).  Empty return = EOF, error, timeout.
  std::string ReadLine() {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl + 1);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the server closed its side (EOF) and no buffered line
  /// remains.
  bool AtEof() {
    if (!buf_.empty()) return false;
    char chunk[256];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      return false;
    }
    return true;
  }

  /// Half-close: shuts down the write side, leaving reads open.
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

}  // namespace ujoin::serve::testing

#endif  // UJOIN_TESTS_SERVE_SERVE_TEST_UTIL_H_
