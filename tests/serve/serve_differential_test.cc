// Concurrent differential harness for the resident search service: N client
// threads replay a query file against a SearchServer while the same file
// runs through the in-process SearchMany, and everything observable must
// agree — response bytes per query (the server's JSON re-rendered from the
// in-process hits with the client's own sequence numbers), the folded
// JoinStats counters, and the folded metric registry (query-path counters,
// filter-funnel flow, and the work-derived histograms, which are pure
// functions of (query, candidate, options) and therefore bit-identical
// under any interleaving).  Wall-clock histograms (probe/verify latency) and
// the serve-layer recorder are excluded by construction: the former are
// timing-dependent, the latter has no in-process counterpart.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "serve/protocol.h"
#include "serve/search_server.h"
#include "serve_test_util.h"

namespace ujoin {
namespace serve {
namespace {

using serve::testing::LineClient;

std::vector<UncertainString> SeededStrings(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

/// The counters compared between the server fold and the SearchMany fold.
/// (Latency histograms and gauges are deliberately absent: latencies are
/// wall-clock, and SearchMany sets driver gauges the per-query server path
/// does not.)
const obs::Counter kComparedCounters[] = {
    obs::Counter::kQueries,
    obs::Counter::kProbes,
    obs::Counter::kVerifyBudgetFallbacks,
    obs::Counter::kVerifyDeadlineFallbacks,
};
const obs::Hist kComparedHists[] = {
    obs::Hist::kExploredTrieNodes,
    obs::Hist::kMergedListLength,
    obs::Hist::kCandidateAlphaPpm,
    obs::Hist::kVerifyWorldCount,
};
const obs::FunnelStage kAllStages[] = {
    obs::FunnelStage::kQgram,
    obs::FunnelStage::kFreqDistance,
    obs::FunnelStage::kCdfBound,
    obs::FunnelStage::kVerify,
};

void ExpectSameQueryPathMetrics(const obs::Recorder& server,
                                const obs::Recorder& in_process) {
  for (const obs::Counter c : kComparedCounters) {
    EXPECT_EQ(server.counter(c), in_process.counter(c))
        << "counter " << obs::CounterInfo(c).name;
  }
  for (const obs::Hist h : kComparedHists) {
    EXPECT_TRUE(server.hist(h) == in_process.hist(h))
        << "histogram " << obs::HistInfo(h).name;
  }
  for (const obs::FunnelStage s : kAllStages) {
    EXPECT_EQ(server.funnel_entered(s), in_process.funnel_entered(s))
        << "funnel entered " << obs::FunnelStageInfo(s).name;
    EXPECT_EQ(server.funnel_survived(s), in_process.funnel_survived(s))
        << "funnel survived " << obs::FunnelStageInfo(s).name;
  }
}

void ExpectSameCounts(const JoinStats& server, const JoinStats& in_process) {
  EXPECT_EQ(server.length_compatible_pairs,
            in_process.length_compatible_pairs);
  EXPECT_EQ(server.qgram_candidates, in_process.qgram_candidates);
  EXPECT_EQ(server.qgram_support_pruned, in_process.qgram_support_pruned);
  EXPECT_EQ(server.qgram_probability_pruned,
            in_process.qgram_probability_pruned);
  EXPECT_EQ(server.freq_candidates, in_process.freq_candidates);
  EXPECT_EQ(server.freq_lower_pruned, in_process.freq_lower_pruned);
  EXPECT_EQ(server.freq_upper_pruned, in_process.freq_upper_pruned);
  EXPECT_EQ(server.cdf_accepted, in_process.cdf_accepted);
  EXPECT_EQ(server.cdf_rejected, in_process.cdf_rejected);
  EXPECT_EQ(server.cdf_undecided, in_process.cdf_undecided);
  EXPECT_EQ(server.verified_pairs, in_process.verified_pairs);
  EXPECT_EQ(server.result_pairs, in_process.result_pairs);
  EXPECT_EQ(server.budget_fallbacks, in_process.budget_fallbacks);
  EXPECT_EQ(server.deadline_fallbacks, in_process.deadline_fallbacks);
  EXPECT_EQ(server.index_stats.lists_scanned,
            in_process.index_stats.lists_scanned);
  EXPECT_EQ(server.index_stats.postings_scanned,
            in_process.index_stats.postings_scanned);
  EXPECT_EQ(server.index_stats.ids_touched, in_process.index_stats.ids_touched);
  EXPECT_EQ(server.verify_stats.explored_s_nodes,
            in_process.verify_stats.explored_s_nodes);
  EXPECT_EQ(server.verify_stats.r_trie_nodes,
            in_process.verify_stats.r_trie_nodes);
  EXPECT_EQ(server.verify_stats.active_entries,
            in_process.verify_stats.active_entries);
  EXPECT_EQ(server.verify_stats.world_pairs,
            in_process.verify_stats.world_pairs);
}

class ServeDifferentialTest : public ::testing::Test {
 protected:
  /// Runs the whole differential: SearchMany ground truth once, then one
  /// server replay per client count, comparing responses byte-for-byte and
  /// the folded aggregates bit-for-bit.
  void RunDifferential(const JoinOptions& join_options,
                       const SearchLimits& limits) {
    const std::vector<UncertainString> collection = SeededStrings(80, 11);
    const std::vector<UncertainString> queries = SeededStrings(40, 12);
    Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
        collection, Alphabet::Names(), join_options);
    ASSERT_TRUE(searcher.ok());

    // In-process ground truth: stats and metrics folded in query order.
    JoinStats expected_stats;
    obs::Recorder expected_metrics;
    Result<std::vector<std::vector<SearchHit>>> expected =
        searcher->SearchMany(queries, /*threads=*/3, &expected_stats,
                             &expected_metrics, /*trace=*/nullptr, &limits);
    ASSERT_TRUE(expected.ok());
    std::vector<bool> expected_inexact;
    {
      // Per-query inexactness, recomputed the way the server sees it (one
      // private JoinStats per request).
      QueryWorkspace workspace;
      for (const UncertainString& query : queries) {
        JoinStats per_query;
        ASSERT_TRUE(searcher
                        ->Search(query, &per_query, &workspace,
                                 /*metrics=*/nullptr, /*spans=*/nullptr,
                                 &limits)
                        .ok());
        expected_inexact.push_back(per_query.Inexact());
      }
    }

    for (const int clients : {1, 2, 4}) {
      ServeOptions serve_options;
      serve_options.max_connections = clients;
      serve_options.limits = limits;
      SearchServer server(&*searcher, serve_options);
      ASSERT_TRUE(server.Start().ok());

      // Client c replays queries c, c+clients, c+2*clients, ... in lockstep
      // (send one, read one), so responses can be checked byte-for-byte
      // against a local re-rendering with the client's own seq counter.
      std::vector<std::string> failures(static_cast<size_t>(clients));
      std::vector<std::thread> workers;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c]() {
          LineClient client(server.port());
          if (!client.connected()) {
            failures[static_cast<size_t>(c)] = "connect failed";
            return;
          }
          int64_t seq = 0;
          for (size_t i = static_cast<size_t>(c); i < queries.size();
               i += static_cast<size_t>(clients)) {
            if (!client.SendLine(queries[i].ToString())) {
              failures[static_cast<size_t>(c)] = "send failed";
              return;
            }
            ++seq;
            const std::string want = RenderHitsResponse(
                seq, (*expected)[i], expected_inexact[i]);
            const std::string got = client.ReadLine();
            if (got != want) {
              failures[static_cast<size_t>(c)] =
                  "query " + std::to_string(i) + ":\n  want " + want +
                  "  got  " + (got.empty() ? "<eof>\n" : got);
              return;
            }
          }
          client.SendLine("");  // end the batch before disconnecting
        });
      }
      for (std::thread& worker : workers) worker.join();
      for (const std::string& failure : failures) {
        EXPECT_EQ(failure, "") << "with " << clients << " client(s)";
      }
      server.Stop();

      ExpectSameCounts(server.Stats(), expected_stats);
      ExpectSameQueryPathMetrics(server.QueryMetrics(), expected_metrics);
#ifndef UJOIN_OBS_DISABLED
      const obs::Recorder serve_metrics = server.ServeMetrics();
      EXPECT_EQ(serve_metrics.counter(obs::Counter::kServeRequests),
                static_cast<int64_t>(queries.size()));
      EXPECT_EQ(serve_metrics.counter(obs::Counter::kServeRequestErrors), 0);
      EXPECT_EQ(serve_metrics.counter(obs::Counter::kServeConnections),
                clients);
      EXPECT_EQ(
          serve_metrics.hist(obs::Hist::kServeBatchSize).sum(),
          static_cast<int64_t>(queries.size()));
#endif
    }
  }
};

TEST_F(ServeDifferentialTest, FilteredSearchMatchesInProcessFold) {
  RunDifferential(JoinOptions::Qfct(2, 0.1), SearchLimits{});
}

TEST_F(ServeDifferentialTest, AlwaysVerifyMatchesInProcessFold) {
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  RunDifferential(options, SearchLimits{});
}

TEST_F(ServeDifferentialTest, WorldBudgetFallbacksAreIdenticalOverTheWire) {
  // A tight world-count budget forces CDF-bound fallbacks.  The budget is a
  // pure function of the pair, so the inexact result sets and the fallback
  // counters must still be bit-identical between the server and the
  // in-process fold, for every client count.
  JoinOptions options = JoinOptions::Qfct(2, 0.1);
  options.always_verify = true;
  SearchLimits limits;
  limits.max_verify_worlds = 16;
  RunDifferential(options, limits);
}

}  // namespace
}  // namespace serve
}  // namespace ujoin
