// Regression tests for the exponential-verification guard
// (SearchLimits::max_verify_worlds / deadline_ns).  The pathological query is
// a string with seven uncertain positions of twenty alternatives each
// (|worlds| = 20^7 ≈ 1.3e9): exactly verifying it against itself would
// explore a possible-world product of ~1.6e18 and never finish, so the mere
// fact that these tests complete proves the budget early-out works.  The
// fallback must be a *certified* CDF verdict: a hit is emitted iff Theorem
// 4's lower bound exceeds τ, carries that bound as its probability, and is
// flagged exact=false — and the per-query stats flag the result set inexact.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "filter/cdf_filter.h"
#include "join/search.h"
#include "serve/search_server.h"
#include "serve_test_util.h"
#include "text/uncertain_string.h"
#include "verify/verifier.h"

namespace ujoin {
namespace {

using serve::testing::LineClient;

/// Seven uncertain positions, each with alternatives 'a'..'t' where 'a' has
/// probability 0.81 and the 19 others 0.01: a skewed, high-fanout string
/// whose world count (20^7) saturates any practical verification budget
/// while keeping the self-match probability high.
UncertainString PathologicalString() {
  UncertainString::Builder builder;
  for (int pos = 0; pos < 7; ++pos) {
    std::vector<CharProb> alternatives;
    alternatives.push_back({'a', 0.81});
    for (char c = 'b'; c <= 't'; ++c) alternatives.push_back({c, 0.01});
    builder.AddUncertain(std::move(alternatives));
  }
  Result<UncertainString> s = builder.Build();
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

/// A certain string far enough in length from the pathological one that the
/// length window |ΔL| <= k keeps the two from ever pairing up.
UncertainString CheapString() {
  return UncertainString::FromDeterministic("abcdefghijkl");
}

JoinOptions GuardedOptions() {
  // No q-gram index: the candidate set is the whole length window, so the
  // test exercises the budget check on the unfiltered path.  always_verify
  // forces every survivor toward exact verification — the workload the
  // guard exists for.
  JoinOptions options = JoinOptions::Fct(/*k=*/2, /*tau=*/0.01);
  options.always_verify = true;
  return options;
}

class VerifyBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pathological_ = PathologicalString();
    cheap_ = CheapString();
    Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
        {pathological_, cheap_}, Alphabet::Names(), GuardedOptions());
    ASSERT_TRUE(searcher.ok());
    searcher_ =
        std::make_unique<SimilaritySearcher>(std::move(searcher).value());
  }

  UncertainString pathological_;
  UncertainString cheap_;
  std::unique_ptr<SimilaritySearcher> searcher_;
};

TEST_F(VerifyBudgetTest, PairWorldCountExceedsAnyPracticalBudget) {
  const int64_t pair_worlds = PairWorldCount(pathological_, pathological_);
  EXPECT_TRUE(ExceedsWorldBudget(pair_worlds, int64_t{1} << 20));
  // The cheap pair is a single world: never budgeted out.
  EXPECT_FALSE(
      ExceedsWorldBudget(PairWorldCount(cheap_, cheap_), int64_t{1} << 20));
}

TEST_F(VerifyBudgetTest, OverBudgetQueryFallsBackToCdfVerdict) {
  SearchLimits limits;
  limits.max_verify_worlds = int64_t{1} << 20;
  JoinStats stats;
  Result<std::vector<SearchHit>> hits =
      searcher_->Search(pathological_, &stats, /*workspace=*/nullptr,
                        /*metrics=*/nullptr, /*spans=*/nullptr, &limits);
  ASSERT_TRUE(hits.ok());

  // The only length-compatible candidate was budgeted out of verification.
  EXPECT_EQ(stats.budget_fallbacks, 1);
  EXPECT_EQ(stats.deadline_fallbacks, 0);
  EXPECT_EQ(stats.verified_pairs, 0);
  EXPECT_TRUE(stats.Inexact());

  // The fallback verdict must agree exactly with Theorem 4's lower bound:
  // a hit iff lower[k] > tau, carrying the bound itself, flagged inexact.
  const JoinOptions options = GuardedOptions();
  const CdfFilterOutcome cdf = EvaluateCdfFilter(pathological_, pathological_,
                                                 options.k, options.tau);
  const double lower = cdf.bounds.lower[static_cast<size_t>(options.k)];
  if (lower > options.tau) {
    ASSERT_EQ(hits->size(), 1u);
    EXPECT_EQ((*hits)[0].id, 0u);
    EXPECT_FALSE((*hits)[0].exact);
    EXPECT_EQ((*hits)[0].probability, lower);
  } else {
    EXPECT_TRUE(hits->empty());
  }
}

TEST_F(VerifyBudgetTest, UnderBudgetQueryStaysExact) {
  SearchLimits limits;
  limits.max_verify_worlds = int64_t{1} << 20;
  JoinStats stats;
  Result<std::vector<SearchHit>> hits =
      searcher_->Search(cheap_, &stats, /*workspace=*/nullptr,
                        /*metrics=*/nullptr, /*spans=*/nullptr, &limits);
  ASSERT_TRUE(hits.ok());

  // One world pair: verified exactly, so the same limits leave this query's
  // results exact.
  EXPECT_EQ(stats.budget_fallbacks, 0);
  EXPECT_FALSE(stats.Inexact());
  EXPECT_EQ(stats.verified_pairs, 1);
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, 1u);
  EXPECT_TRUE((*hits)[0].exact);
  EXPECT_EQ((*hits)[0].probability, 1.0);
}

TEST_F(VerifyBudgetTest, ExpiredDeadlineFallsBackToCdfVerdict) {
  // A 1 ns deadline has always expired by the time the first candidate is
  // checked, so even the cheap pair is decided from its CDF bounds.
  SearchLimits limits;
  limits.deadline_ns = 1;
  JoinStats stats;
  Result<std::vector<SearchHit>> hits =
      searcher_->Search(cheap_, &stats, /*workspace=*/nullptr,
                        /*metrics=*/nullptr, /*spans=*/nullptr, &limits);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(stats.deadline_fallbacks, 1);
  EXPECT_EQ(stats.budget_fallbacks, 0);
  EXPECT_EQ(stats.verified_pairs, 0);
  EXPECT_TRUE(stats.Inexact());
  // ed(cheap, cheap) = 0 with certainty, so the CDF lower bound is exact
  // (1.0) and the hit survives the fallback — flagged inexact regardless.
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_FALSE((*hits)[0].exact);
  EXPECT_EQ((*hits)[0].probability, 1.0);
}

TEST_F(VerifyBudgetTest, ServerMarksOverBudgetResponsesInexact) {
  serve::ServeOptions serve_options;
  serve_options.limits.max_verify_worlds = int64_t{1} << 20;
  serve::SearchServer server(searcher_.get(), serve_options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  // The pathological query trips the budget: the response must carry the
  // inexact flag so clients can tell a certified-but-bounded answer apart
  // from an exact one.
  ASSERT_TRUE(client.SendLine(pathological_.ToString()));
  std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"inexact\":true"), std::string::npos) << response;

  // The cheap query on the same connection, under the same limits, stays
  // exact.
  ASSERT_TRUE(client.SendLine(cheap_.ToString()));
  response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"inexact\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"exact\":true"), std::string::npos) << response;

  client.Close();
  server.Stop();
  EXPECT_EQ(server.Stats().budget_fallbacks, 1);
}

}  // namespace
}  // namespace ujoin
