// Serve-layer per-query diagnostics: the slow-query rings' client-count
// invariance, the /debug/slow page's whole-page snapshot contract under
// live load, the slow-trace force-keep gate, the structured query log's
// attribution, and the per-batch request cap.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "serve/search_server.h"
#include "serve_test_util.h"

namespace ujoin {
namespace serve {
namespace {

using serve::testing::LineClient;

std::vector<UncertainString> SeededStrings(int size, uint64_t seed) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = size;
  opt.theta = 0.25;
  opt.seed = seed;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  return GenerateDataset(opt).strings;
}

// Minimal blocking HTTP/1.0 client for the scrape endpoint (same shape as
// the one in tests/obs/scrape_server_test.cc).
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

class SlowQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collection_ = SeededStrings(80, 21);
    queries_ = SeededStrings(40, 22);
    JoinOptions options = JoinOptions::Qfct(2, 0.1);
    options.always_verify = true;
    Result<SimilaritySearcher> searcher =
        SimilaritySearcher::Create(collection_, Alphabet::Names(), options);
    ASSERT_TRUE(searcher.ok());
    searcher_ = std::make_unique<SimilaritySearcher>(
        std::move(searcher).value());
  }

  /// Replays queries_ against a fresh server with `clients` concurrent
  /// connections (strided assignment, one batch per client).  Returns false
  /// on any client-side failure.
  bool Replay(SearchServer* server, int clients) {
    std::atomic<bool> ok{true};
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c]() {
        LineClient client(server->port());
        if (!client.connected()) {
          ok.store(false);
          return;
        }
        for (size_t i = static_cast<size_t>(c); i < queries_.size();
             i += static_cast<size_t>(clients)) {
          if (!client.SendLine(queries_[i].ToString()) ||
              client.ReadLine().empty()) {
            ok.store(false);
            return;
          }
        }
        client.SendLine("");  // close the batch so buffered records flush
      });
    }
    for (std::thread& worker : workers) worker.join();
    return ok.load();
  }

  std::vector<UncertainString> collection_;
  std::vector<UncertainString> queries_;
  std::unique_ptr<SimilaritySearcher> searcher_;
};

std::vector<std::string> ContentsOf(
    const std::vector<obs::QueryLogRecord>& records) {
  std::vector<std::string> contents;
  for (const obs::QueryLogRecord& rec : records) {
    contents.push_back(obs::DeterministicContentJson(rec));
  }
  return contents;
}

/// The query-content span of one JSONL line: everything from
/// "query_length" up to the timing object — attribution (request id,
/// connection, seq) before it and wall clock after it are the fields that
/// legitimately vary with client topology.
std::string ContentSpanOf(const std::string& line) {
  const size_t begin = line.find("\"query_length\"");
  const size_t end = line.find(",\"timing\"");
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    return "<malformed: " + line + ">";
  }
  return line.substr(begin, end - begin);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// The verify-worlds ring is a pure top-N by (verify cost, content): the
// same workload spread over 1, 2, or 4 connections keeps exactly the same
// records (deterministic fields).  The query log's content fields are the
// same multiset too — only attribution and timing may differ.
TEST_F(SlowQueryTest, VerifyWorldsRingAndLogContentAreClientCountInvariant) {
  std::vector<std::string> baseline_ring;
  std::vector<std::string> baseline_content;
  for (const int clients : {1, 2, 4}) {
    const std::string log_path = ::testing::TempDir() + "slow_query_log_" +
                                 std::to_string(clients) + ".jsonl";
    obs::QueryLog log;
    ASSERT_TRUE(log.Open(log_path).ok());
    ServeOptions options;
    options.max_connections = clients;
    options.query_log = &log;
    SearchServer server(searcher_.get(), options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(Replay(&server, clients));
    server.Stop();
    ASSERT_TRUE(log.Close().ok());

    // Ring snapshot: worst-first sequence of deterministic content.
    const std::vector<std::string> ring =
        ContentsOf(server.SlowQueriesByVerifyWorlds());
    EXPECT_EQ(ring.size(),
              std::min<size_t>(queries_.size(),
                               obs::SlowQueryRing::kDefaultCapacity));

    // Log contents: one record per query, same content multiset.
    std::vector<std::string> content;
    for (const std::string& line : ReadLines(log_path)) {
      content.push_back(ContentSpanOf(line));
    }
    EXPECT_EQ(content.size(), queries_.size());
    std::sort(content.begin(), content.end());

    if (clients == 1) {
      baseline_ring = ring;
      baseline_content = content;
    } else {
      EXPECT_EQ(ring, baseline_ring) << "with " << clients << " clients";
      EXPECT_EQ(content, baseline_content)
          << "with " << clients << " clients";
    }
    std::remove(log_path.c_str());
  }
}

TEST_F(SlowQueryTest, QueryLogAttributesConnectionAndSeq) {
  const std::string log_path =
      ::testing::TempDir() + "slow_query_log_attr.jsonl";
  obs::QueryLog log;
  ASSERT_TRUE(log.Open(log_path).ok());
  ServeOptions options;
  options.query_log = &log;
  SearchServer server(searcher_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  {
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(client.SendLine(queries_[static_cast<size_t>(i)]
                                      .ToString()));
      ASSERT_NE(client.ReadLine(), "");
    }
    client.SendLine("");
  }
  server.Stop();
  ASSERT_TRUE(log.Close().ok());

  const std::vector<std::string> lines = ReadLines(log_path);
  ASSERT_EQ(lines.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const std::string& line = lines[static_cast<size_t>(i)];
    EXPECT_NE(line.find("\"connection\":1,\"seq\":" + std::to_string(i + 1)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  }
  std::remove(log_path.c_str());
}

// /debug/slow under live traffic: every response is a whole page of the
// current schema (or a 404 before the first push), never a torn mix —
// and the page the ring snapshot renders matches SlowQueriesJson.
TEST_F(SlowQueryTest, DebugSlowPageIsWholeUnderLiveLoad) {
  ServeOptions options;
  options.metrics_port = 0;
  SearchServer server(searcher_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);

  std::atomic<bool> done{false};
  std::thread driver([&]() {
    EXPECT_TRUE(Replay(&server, 2));
    done.store(true);
  });
  int pages = 0;
  while (!done.load() || pages < 5) {
    const std::string response =
        HttpGet(server.metrics_port(), "/debug/slow");
    if (response.find("HTTP/1.0 404") != std::string::npos) continue;
    const std::string body = BodyOf(response);
    ASSERT_EQ(body.rfind("{\"schema\":\"ujoin.slow_queries\"", 0), 0u)
        << body.substr(0, 80);
    ASSERT_EQ(body.substr(body.size() - 2), "}\n");
    ++pages;
  }
  driver.join();

  // The blank separator is fire-and-forget on the client side, so the last
  // FinishBatch (which publishes the page) can trail the join: poll until
  // the served page catches up with the ring snapshot.
  std::string final_page;
  for (int attempt = 0; attempt < 100; ++attempt) {
    final_page = BodyOf(HttpGet(server.metrics_port(), "/debug/slow"));
    if (final_page == server.SlowQueriesJson()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(final_page, server.SlowQueriesJson());
  server.Stop();
}

// The slow-keep threshold force-keeps spans the sampler would drop: with
// sampling off entirely, a 1 ns threshold keeps everything and a disabled
// threshold keeps nothing.
TEST_F(SlowQueryTest, SlowTraceThresholdForceKeepsSpans) {
  {
    obs::TraceRecorder tracer;
    tracer.SetProbeSampling(0, /*seed=*/42);  // sampler keeps none
    tracer.SetSlowKeepNs(1);                  // every query is >= 1 ns
    ServeOptions options;
    options.trace = &tracer;
    SearchServer server(searcher_.get(), options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(Replay(&server, 1));
    server.Stop();
    EXPECT_GT(tracer.num_events(), 0u);
  }
  {
    obs::TraceRecorder tracer;
    tracer.SetProbeSampling(0, /*seed=*/42);
    ServeOptions options;
    options.trace = &tracer;
    SearchServer server(searcher_.get(), options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(Replay(&server, 1));
    server.Stop();
    EXPECT_EQ(tracer.num_events(), 0u);
  }
}

// The per-batch request cap: queries beyond the cap get a structured error
// and the connection closes; the blank separator resets the count.
TEST_F(SlowQueryTest, BatchRequestCapRejectsOverlongBatches) {
  ServeOptions options;
  options.max_batch_requests = 2;
  SearchServer server(searcher_.get(), options);
  ASSERT_TRUE(server.Start().ok());
  {
    // Separator-respecting client: two batches of two, all answered.
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int batch = 0; batch < 2; ++batch) {
      for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(client.SendLine(
            queries_[static_cast<size_t>(2 * batch + i)].ToString()));
        const std::string response = client.ReadLine();
        EXPECT_EQ(response.find("\"error\""), std::string::npos) << response;
      }
      ASSERT_TRUE(client.SendLine(""));
    }
  }
  {
    // Cap violator: the third request of one batch draws the structured
    // error and the connection is closed.
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(client.SendLine(queries_[static_cast<size_t>(i)]
                                      .ToString()));
      ASSERT_NE(client.ReadLine(), "");
    }
    ASSERT_TRUE(client.SendLine(queries_[2].ToString()));
    const std::string error = client.ReadLine();
    EXPECT_NE(error.find("batch exceeds request cap"), std::string::npos)
        << error;
    EXPECT_TRUE(client.AtEof());
  }
  server.Stop();

#ifndef UJOIN_OBS_DISABLED
  EXPECT_EQ(server.ServeMetrics().counter(obs::Counter::kServeRequestErrors),
            1);
#endif
}

}  // namespace
}  // namespace serve
}  // namespace ujoin
