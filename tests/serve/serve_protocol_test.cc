#include "serve/protocol.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/search.h"
#include "serve/search_server.h"
#include "serve_test_util.h"

namespace ujoin {
namespace serve {
namespace {

using serve::testing::LineClient;

// --- LineFramer ------------------------------------------------------------

TEST(LineFramerTest, SplitsCompleteLines) {
  LineFramer framer(64);
  const std::string stream = "one\ntwo\r\n\nthree";
  framer.Append(stream.data(), stream.size());
  std::string line;
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, "one");
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, "two");  // CR stripped
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, "");  // batch separator
  EXPECT_FALSE(framer.NextLine(&line));  // "three" has no newline yet
  framer.Append("\n", 1);
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, "three");
}

TEST(LineFramerTest, ReassemblesSplitFrames) {
  LineFramer framer(64);
  std::string line;
  framer.Append("hel", 3);
  EXPECT_FALSE(framer.NextLine(&line));
  framer.Append("lo\nwo", 5);
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, "hello");
  EXPECT_FALSE(framer.NextLine(&line));
  framer.Append("rld\n", 4);
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, "world");
}

TEST(LineFramerTest, PartialOverLimitFiresOnlyWithoutNewline) {
  LineFramer framer(8);
  const std::string long_line(20, 'x');
  framer.Append(long_line.data(), long_line.size());
  EXPECT_TRUE(framer.PartialOverLimit());
  // A newline restores framing: the oversized line is returned whole so the
  // caller can answer it with an error and keep the connection.
  framer.Append("\n", 1);
  std::string line;
  ASSERT_TRUE(framer.NextLine(&line));
  EXPECT_EQ(line, long_line);
  EXPECT_FALSE(framer.PartialOverLimit());
}

TEST(LineFramerTest, LongLivedStreamStaysBounded) {
  LineFramer framer(32);
  std::string line;
  for (int i = 0; i < 10000; ++i) {
    std::string payload = "q";
    payload += std::to_string(i);
    const std::string frame = payload + "\n";
    framer.Append(frame.data(), frame.size());
    ASSERT_TRUE(framer.NextLine(&line));
    EXPECT_EQ(line, payload);
    EXPECT_FALSE(framer.NextLine(&line));
    EXPECT_FALSE(framer.PartialOverLimit());
  }
}

// --- BatchGuard ------------------------------------------------------------

TEST(BatchGuardTest, CountsRequestsAgainstTheCap) {
  BatchGuard guard(/*max_requests=*/2, /*max_bytes=*/0);
  EXPECT_TRUE(guard.AddRequest(10));
  EXPECT_TRUE(guard.AddRequest(10));
  // The violating line is still counted, so the message can describe it.
  EXPECT_FALSE(guard.AddRequest(10));
  EXPECT_EQ(guard.requests(), 3);
  EXPECT_TRUE(guard.OverLimit());
  EXPECT_NE(guard.ViolationMessage().find("batch exceeds request cap of 2"),
            std::string::npos)
      << guard.ViolationMessage();

  // The separator starts a fresh batch.
  guard.Reset();
  EXPECT_FALSE(guard.OverLimit());
  EXPECT_TRUE(guard.AddRequest(10));
}

TEST(BatchGuardTest, CountsBytesAgainstTheCap) {
  BatchGuard guard(/*max_requests=*/0, /*max_bytes=*/100);
  EXPECT_TRUE(guard.AddRequest(60));
  EXPECT_FALSE(guard.AddRequest(60));
  EXPECT_EQ(guard.bytes(), 120);
  EXPECT_NE(guard.ViolationMessage().find("byte"), std::string::npos)
      << guard.ViolationMessage();
  guard.Reset();
  EXPECT_TRUE(guard.AddRequest(60));
}

TEST(BatchGuardTest, NonPositiveCapsAreUnlimited) {
  BatchGuard guard(/*max_requests=*/0, /*max_bytes=*/-1);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(guard.AddRequest(1 << 20));
  }
  EXPECT_FALSE(guard.OverLimit());
}

// --- Response rendering ----------------------------------------------------

TEST(ProtocolRenderTest, HitsResponseBytes) {
  const std::vector<SearchHit> hits = {{3, 0.75, true}, {9, 0.5, false}};
  EXPECT_EQ(RenderHitsResponse(7, hits, /*inexact=*/true),
            "{\"seq\":7,\"status\":\"ok\",\"inexact\":true,\"hits\":["
            "{\"id\":3,\"probability\":0.75,\"exact\":true},"
            "{\"id\":9,\"probability\":0.5,\"exact\":false}]}\n");
  EXPECT_EQ(RenderHitsResponse(1, {}, /*inexact=*/false),
            "{\"seq\":1,\"status\":\"ok\",\"inexact\":false,\"hits\":[]}\n");
}

TEST(ProtocolRenderTest, ErrorAndBusyResponseBytes) {
  EXPECT_EQ(RenderErrorResponse(2, "bad \"frame\""),
            "{\"seq\":2,\"status\":\"error\",\"error\":\"bad \\\"frame\\\"\"}\n");
  EXPECT_EQ(RenderBusyResponse(),
            "{\"seq\":0,\"status\":\"busy\",\"error\":"
            "\"server at connection capacity\"}\n");
}

TEST(ProtocolRenderTest, ServeHealthDescribesTheBuildAndTheIndex) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = 30;
  opt.theta = 0.25;
  opt.seed = 9;
  opt.min_length = 4;
  opt.max_length = 10;
  opt.max_uncertain_positions = 4;
  const std::vector<UncertainString> collection = GenerateDataset(opt).strings;
  Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
      collection, Alphabet::Names(), JoinOptions::Qfct(2, 0.1));
  ASSERT_TRUE(searcher.ok());

  const std::string health = RenderServeHealth(*searcher);
  EXPECT_EQ(health.rfind("{\"status\":\"ok\",\"searcher_format_version\":", 0),
            0u)
      << health;
  EXPECT_NE(health.find("\"simd_isa\":\""), std::string::npos);
  EXPECT_NE(health.find("\"metrics_schema_version\":"), std::string::npos);
  EXPECT_NE(health.find("\"collection_size\":30"), std::string::npos);
  EXPECT_NE(health.find("\"index_length_buckets\":"), std::string::npos);
  EXPECT_NE(health.find("\"index_segments\":"), std::string::npos);
#ifdef UJOIN_OBS_DISABLED
  EXPECT_NE(health.find("\"obs\":false"), std::string::npos);
#else
  EXPECT_NE(health.find("\"obs\":true"), std::string::npos);
#endif
  EXPECT_EQ(health.back(), '\n');
  // Byte-deterministic for a fixed build and searcher.
  EXPECT_EQ(RenderServeHealth(*searcher), health);
}

// --- Server robustness (raw-socket fixtures) -------------------------------

class ServeRobustnessTest : public ::testing::Test {
 protected:
  void StartServer(ServeOptions options) {
    DatasetOptions opt;
    opt.kind = DatasetOptions::Kind::kNames;
    opt.size = 30;
    opt.theta = 0.25;
    opt.seed = 9;
    opt.min_length = 4;
    opt.max_length = 10;
    opt.max_uncertain_positions = 4;
    collection_ = GenerateDataset(opt).strings;
    JoinOptions join_options = JoinOptions::Qfct(2, 0.1);
    Result<SimilaritySearcher> searcher = SimilaritySearcher::Create(
        collection_, Alphabet::Names(), join_options);
    ASSERT_TRUE(searcher.ok());
    searcher_ = std::make_unique<SimilaritySearcher>(
        std::move(searcher).value());
    server_ = std::make_unique<SearchServer>(searcher_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::string QueryLine(size_t i) const {
    return collection_[i % collection_.size()].ToString();
  }

  /// A valid request answered with status "ok" proves the server is still
  /// accepting and serving after whatever abuse the test inflicted.
  void ExpectServerAlive() {
    LineClient probe(server_->port());
    ASSERT_TRUE(probe.connected());
    ASSERT_TRUE(probe.SendLine(QueryLine(0)));
    const std::string response = probe.ReadLine();
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
        << response;
  }

  std::vector<UncertainString> collection_;
  std::unique_ptr<SimilaritySearcher> searcher_;
  std::unique_ptr<SearchServer> server_;
};

TEST_F(ServeRobustnessTest, MalformedFrameGetsErrorAndConnectionSurvives) {
  StartServer(ServeOptions{});
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("not a valid uncertain string !!"));
  std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"seq\":1"), std::string::npos) << response;
  // Same connection keeps working: framing was never lost.
  ASSERT_TRUE(client.SendLine(QueryLine(0)));
  response = client.ReadLine();
  EXPECT_NE(response.find("\"seq\":2"), std::string::npos) << response;
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  client.Close();
  ExpectServerAlive();
#ifndef UJOIN_OBS_DISABLED
  const obs::Recorder serve_metrics = server_->ServeMetrics();
  EXPECT_EQ(serve_metrics.counter(obs::Counter::kServeRequestErrors), 1);
#endif
}

TEST_F(ServeRobustnessTest, OversizedCompleteLineGetsErrorAndSurvives) {
  ServeOptions options;
  // Big enough for any rendered test query, small enough to overflow
  // cheaply.
  options.max_request_bytes = 1024;
  StartServer(options);
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // The oversized line ends in a newline inside one segment, so framing is
  // intact and the connection must survive.
  ASSERT_TRUE(client.SendLine(std::string(1025, 'A')));
  std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("exceeds 1024 bytes"), std::string::npos)
      << response;
  ASSERT_TRUE(client.SendLine(QueryLine(0)));
  response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
}

TEST_F(ServeRobustnessTest, OversizedPartialLineClosesConnection) {
  ServeOptions options;
  options.max_request_bytes = 1024;
  StartServer(options);
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // 1500 bytes and no newline: the frame boundary is unrecoverable, so the
  // server answers once and drops the connection.
  ASSERT_TRUE(client.SendRaw(std::string(1500, 'B')));
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("without a newline"), std::string::npos)
      << response;
  EXPECT_TRUE(client.AtEof());
  ExpectServerAlive();
}

TEST_F(ServeRobustnessTest, HalfClosedConnectionFlushesAndCloses) {
  StartServer(ServeOptions{});
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine(QueryLine(0)));
  client.ShutdownWrite();
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  EXPECT_TRUE(client.AtEof());
  ExpectServerAlive();
#ifndef UJOIN_OBS_DISABLED
  // The half-close ended the connection's final batch.
  const obs::Recorder serve_metrics = server_->ServeMetrics();
  EXPECT_GE(serve_metrics.counter(obs::Counter::kServeBatches), 1);
#endif
}

TEST_F(ServeRobustnessTest, SilentDisconnectLeavesServerServing) {
  StartServer(ServeOptions{});
  {
    LineClient client(server_->port());
    ASSERT_TRUE(client.connected());
    // Connect and vanish without sending a byte.
  }
  ExpectServerAlive();
}

TEST_F(ServeRobustnessTest, AdmissionControlRejectsBeyondCapacity) {
  ServeOptions options;
  options.max_connections = 1;
  StartServer(options);
  // The response to a query proves this connection holds the one workspace
  // lease before the second connection arrives.
  LineClient holder(server_->port());
  ASSERT_TRUE(holder.connected());
  ASSERT_TRUE(holder.SendLine(QueryLine(0)));
  ASSERT_NE(holder.ReadLine().find("\"status\":\"ok\""), std::string::npos);

  LineClient rejected(server_->port());
  ASSERT_TRUE(rejected.connected());
  EXPECT_EQ(rejected.ReadLine(), RenderBusyResponse());
  EXPECT_TRUE(rejected.AtEof());
  rejected.Close();

  // Releasing the lease re-opens admission.  The release happens after the
  // server notices the close, so poll until a fresh connection is served.
  holder.Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    LineClient retry(server_->port());
    ASSERT_TRUE(retry.connected());
    ASSERT_TRUE(retry.SendLine(QueryLine(1)));
    const std::string response = retry.ReadLine();
    if (response.find("\"status\":\"ok\"") != std::string::npos) {
      admitted = true;
    }
  }
  EXPECT_TRUE(admitted);
#ifndef UJOIN_OBS_DISABLED
  const obs::Recorder serve_metrics = server_->ServeMetrics();
  EXPECT_GE(serve_metrics.counter(obs::Counter::kServeRejectedConnections),
            1);
#endif
}

TEST_F(ServeRobustnessTest, StopWithIdleConnectionDoesNotHang) {
  StartServer(ServeOptions{});
  LineClient idle(server_->port());
  ASSERT_TRUE(idle.connected());
  // No bytes sent: the worker is parked in its poll loop.  Stop() must
  // still drain within the 100 ms tick.
  server_->Stop();
}

}  // namespace
}  // namespace serve
}  // namespace ujoin
