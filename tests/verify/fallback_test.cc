// Tests the verification fallback chain: plain trie on the cheaper side →
// compressed trie → naive enumeration.

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"
#include "verify/compressed_verifier.h"
#include "verify/verifier.h"

namespace ujoin {
namespace {

UncertainString LongSparseString(int certain_run, int uncertain, Rng& rng) {
  UncertainString::Builder b;
  const Alphabet dna = Alphabet::Dna();
  for (int i = 0; i < uncertain; ++i) {
    b.AddUncertain({{'A', 0.25}, {'C', 0.25}, {'G', 0.25}, {'T', 0.25}});
    for (int j = 0; j < certain_run; ++j) {
      b.AddCertain(dna.SymbolAt(static_cast<int>(rng.Uniform(4))));
    }
  }
  return b.Build().value();
}

TEST(VerifyFallbackTest, SymmetricInArguments) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(701);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 8;
  opt.theta = 0.4;
  for (int trial = 0; trial < 100; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 3));
    Result<double> ab = VerifyPairProbability(r, s, k);
    Result<double> ba = VerifyPairProbability(s, r, k);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_NEAR(*ab, *ba, 1e-9);
    EXPECT_NEAR(*ab, testing::BruteForceMatchProbability(r, s, k), 1e-9);
  }
}

TEST(VerifyFallbackTest, FallsBackToCompressedTrieOnLongStrings) {
  // R: 7 uncertain positions with 10-char certain runs (length 77,
  // 4^7 = 16384 worlds): its plain trie needs worlds × length nodes.
  // S: a deterministic instance of R.  With a node budget of 50, the plain
  // trie fails on *both* orientations (even S's path trie has 78 nodes),
  // and naive enumeration is capped out too — only the compressed trie
  // (1 node for S) can answer.
  Rng rng(702);
  const UncertainString r = LongSparseString(10, 7, rng);
  const UncertainString s =
      UncertainString::FromDeterministic(r.MostLikelyInstance());
  VerifyOptions options;
  options.max_trie_nodes = 50;
  options.max_world_pairs = 100;
  EXPECT_FALSE(TrieVerifier::Create(r, 0, options).ok());
  EXPECT_FALSE(TrieVerifier::Create(s, 0, options).ok());
  EXPECT_FALSE(NaiveVerifyProbability(r, s, 0, options).ok());
  Result<double> prob = VerifyPairProbability(r, s, 0, options);
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  EXPECT_NEAR(*prob, std::pow(0.25, 7), 1e-12);
}

TEST(VerifyFallbackTest, ReportsErrorWhenEverythingOverflows) {
  // Dense uncertainty: even the compressed trie exceeds a tiny budget.
  Rng rng(703);
  const UncertainString r = LongSparseString(0, 14, rng);  // 4^14 worlds
  VerifyOptions options;
  options.max_trie_nodes = 1000;
  options.max_world_pairs = 1000;
  Result<double> prob = VerifyPairProbability(r, r, 1, options);
  ASSERT_FALSE(prob.ok());
  EXPECT_EQ(prob.status().code(), StatusCode::kResourceExhausted);
}

TEST(VerifyFallbackTest, PrefersTheCheaperSide) {
  // R has a huge world count, S is deterministic: the fallback must build
  // the trie on S... actually on the side with fewer worlds, which
  // succeeds even when R's own trie would overflow.
  Rng rng(704);
  const UncertainString r = LongSparseString(2, 10, rng);  // 4^10 worlds
  const UncertainString s =
      UncertainString::FromDeterministic(r.MostLikelyInstance());
  VerifyOptions options;
  options.max_trie_nodes = 1 << 16;  // too small for T_R, fine for T_S
  Result<double> prob = VerifyPairProbability(r, s, 0, options);
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  // Pr(R = s) = probability of the most likely world: (1/4)^10.
  EXPECT_NEAR(*prob, std::pow(0.25, 10), 1e-12);
}

}  // namespace
}  // namespace ujoin
