#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "join/self_join.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"
#include "verify/verifier.h"

namespace ujoin {
namespace {

TEST(DecideSimilarTest, VerdictMatchesExactProbabilityOnRandomPairs) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(311);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 8;
  opt.theta = 0.45;
  int early_stops = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 3));
    const double tau = rng.UniformDouble();
    Result<TrieVerifier> verifier = TrieVerifier::Create(r, k);
    ASSERT_TRUE(verifier.ok());
    const ThresholdVerdict verdict = verifier->DecideSimilar(s, tau);
    const double truth = testing::BruteForceMatchProbability(r, s, k);
    EXPECT_EQ(verdict.similar, truth > tau)
        << "R=" << r.ToString() << " S=" << s.ToString() << " k=" << k
        << " tau=" << tau << " truth=" << truth;
    EXPECT_LE(verdict.lower, truth + 1e-9);
    EXPECT_GE(verdict.upper, truth - 1e-9);
    if (verdict.exact) {
      EXPECT_NEAR(verdict.lower, verdict.upper, 1e-12);
      EXPECT_NEAR(verdict.lower, truth, 1e-9);
    } else {
      ++early_stops;
    }
  }
  EXPECT_GT(early_stops, 30);  // early termination must actually happen
}

TEST(DecideSimilarTest, EarlyStopExploresFewerNodes) {
  Alphabet dna = Alphabet::Dna();
  // A pair that is obviously similar: identical strings with many uncertain
  // positions.  The accept threshold is crossed long before the full walk.
  UncertainString::Builder b;
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      b.AddUncertain({{'A', 0.9}, {'C', 0.1}});
    } else {
      b.AddCertain('G');
    }
  }
  const UncertainString s = b.Build().value();
  Result<TrieVerifier> verifier = TrieVerifier::Create(s, 2);
  ASSERT_TRUE(verifier.ok());
  VerifyStats full_stats, early_stats;
  verifier->Probability(s, &full_stats);
  const ThresholdVerdict verdict =
      verifier->DecideSimilar(s, 0.01, &early_stats);
  EXPECT_TRUE(verdict.similar);
  EXPECT_FALSE(verdict.exact);
  EXPECT_LT(early_stats.explored_s_nodes, full_stats.explored_s_nodes);
}

TEST(DecideSimilarTest, CompletedWalkIsExact) {
  Alphabet dna = Alphabet::Dna();
  const UncertainString r = UncertainString::FromDeterministic("ACGTAC");
  Result<UncertainString> s =
      UncertainString::Parse("AC{(G,0.6),(T,0.4)}TAC", dna);
  ASSERT_TRUE(s.ok());
  Result<TrieVerifier> verifier = TrieVerifier::Create(r, 0);
  ASSERT_TRUE(verifier.ok());
  // tau = 1 can never accept early and rejection needs the full walk when
  // the probability is positive; expect an exact 0.6.
  const ThresholdVerdict verdict = verifier->DecideSimilar(*s, 0.99);
  EXPECT_FALSE(verdict.similar);
  EXPECT_NEAR(verdict.upper, 0.6, 1e-9);
}

TEST(EarlyStopJoinTest, SameResultSetAsExactJoin) {
  DatasetOptions data_opt;
  data_opt.kind = DatasetOptions::Kind::kNames;
  data_opt.size = 60;
  data_opt.theta = 0.3;
  data_opt.seed = 71;
  data_opt.min_length = 4;
  data_opt.max_length = 10;
  data_opt.max_uncertain_positions = 4;
  const Dataset data = GenerateDataset(data_opt);
  JoinOptions exact_options = JoinOptions::Qfct(2, 0.1);
  JoinOptions early_options = exact_options;
  early_options.early_stop_verification = true;
  Result<SelfJoinResult> exact =
      SimilaritySelfJoin(data.strings, data.alphabet, exact_options);
  Result<SelfJoinResult> early =
      SimilaritySelfJoin(data.strings, data.alphabet, early_options);
  ASSERT_TRUE(exact.ok() && early.ok());
  ASSERT_EQ(exact->pairs.size(), early->pairs.size());
  for (size_t i = 0; i < exact->pairs.size(); ++i) {
    EXPECT_EQ(exact->pairs[i].lhs, early->pairs[i].lhs);
    EXPECT_EQ(exact->pairs[i].rhs, early->pairs[i].rhs);
    // Early-stop probabilities are certified lower bounds.
    EXPECT_LE(early->pairs[i].probability,
              exact->pairs[i].probability + 1e-9);
    EXPECT_GT(early->pairs[i].probability, early_options.tau);
  }
}

}  // namespace
}  // namespace ujoin
