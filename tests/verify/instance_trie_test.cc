#include "verify/instance_trie.h"

#include <map>

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "text/possible_worlds.h"
#include "util/rng.h"

namespace ujoin {
namespace {

TEST(InstanceTrieTest, DeterministicStringIsAPath) {
  Result<InstanceTrie> trie =
      InstanceTrie::Build(UncertainString::FromDeterministic("ACG"));
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_nodes(), 4);  // root + 3
  EXPECT_EQ(trie->depth(), 3);
  int32_t id = trie->root();
  std::string path;
  while (trie->node(id).num_children > 0) {
    ASSERT_EQ(trie->node(id).num_children, 1);
    id = trie->node(id).first_child;
    path.push_back(trie->node(id).symbol);
    EXPECT_DOUBLE_EQ(trie->node(id).prob, 1.0);
  }
  EXPECT_EQ(path, "ACG");
  EXPECT_TRUE(trie->IsLeaf(id));
}

TEST(InstanceTrieTest, LeafProbabilitiesMatchWorlds) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(71);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 7;
  opt.theta = 0.5;
  for (int trial = 0; trial < 40; ++trial) {
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    Result<InstanceTrie> trie = InstanceTrie::Build(s);
    ASSERT_TRUE(trie.ok());
    // Collect leaves by walking every node.
    std::map<std::string, double> leaves;
    std::vector<std::pair<int32_t, std::string>> stack = {{trie->root(), ""}};
    double leaf_sum = 0.0;
    while (!stack.empty()) {
      auto [id, prefix] = stack.back();
      stack.pop_back();
      const auto& node = trie->node(id);
      if (trie->IsLeaf(id)) {
        leaves[prefix] = node.prob;
        leaf_sum += node.prob;
        continue;
      }
      for (int32_t ch = 0; ch < node.num_children; ++ch) {
        const int32_t child = node.first_child + ch;
        stack.push_back({child, prefix + trie->node(child).symbol});
      }
    }
    EXPECT_NEAR(leaf_sum, 1.0, 1e-9);
    EXPECT_EQ(static_cast<int64_t>(leaves.size()), s.WorldCount());
    ForEachWorld(s, [&](const std::string& instance, double prob) {
      ASSERT_TRUE(leaves.count(instance)) << instance;
      EXPECT_NEAR(leaves.at(instance), prob, 1e-12);
    });
  }
}

TEST(InstanceTrieTest, BfsIdsAreLevelOrdered) {
  Alphabet dna = Alphabet::Dna();
  Result<UncertainString> s = UncertainString::Parse(
      "{(A,0.5),(C,0.5)}G{(A,0.3),(G,0.3),(T,0.4)}", dna);
  ASSERT_TRUE(s.ok());
  Result<InstanceTrie> trie = InstanceTrie::Build(*s);
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_nodes(), 1 + 2 + 2 + 6);
  for (int32_t id = 1; id < trie->num_nodes(); ++id) {
    EXPECT_GE(trie->node(id).depth, trie->node(id - 1).depth);
    EXPECT_LT(trie->node(id).parent, id);
    EXPECT_EQ(trie->node(id).depth, trie->node(trie->node(id).parent).depth + 1);
  }
}

TEST(InstanceTrieTest, NodeCapReturnsResourceExhausted) {
  UncertainString::Builder b;
  for (int i = 0; i < 20; ++i) b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  Result<InstanceTrie> trie = InstanceTrie::Build(*s, /*max_nodes=*/1000);
  ASSERT_FALSE(trie.ok());
  EXPECT_EQ(trie.status().code(), StatusCode::kResourceExhausted);
}

TEST(InstanceTrieTest, EmptyStringIsJustRoot) {
  Result<InstanceTrie> trie = InstanceTrie::Build(UncertainString());
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_nodes(), 1);
  EXPECT_TRUE(trie->IsLeaf(trie->root()));
  EXPECT_DOUBLE_EQ(trie->node(trie->root()).prob, 1.0);
}

}  // namespace
}  // namespace ujoin
