#include "verify/compressed_verifier.h"

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"
#include "verify/instance_trie.h"

namespace ujoin {
namespace {

TEST(CompressedTrieTest, DeterministicStringIsOneNode) {
  Result<CompressedInstanceTrie> trie = CompressedInstanceTrie::Build(
      UncertainString::FromDeterministic("ACGTACGT"));
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_nodes(), 1);
  EXPECT_EQ(trie->LabelLength(0), 8);
  EXPECT_EQ(trie->LabelChar(0, 0), 'A');
  EXPECT_EQ(trie->LabelChar(0, 7), 'T');
  EXPECT_TRUE(trie->IsLeafNode(0));
  EXPECT_EQ(trie->EndDepth(0), 8);
}

TEST(CompressedTrieTest, NodeCountIsChoicePrefixCount) {
  Alphabet dna = Alphabet::Dna();
  // Two uncertain positions with 2 and 3 alternatives: 1 + 2 + 6 nodes,
  // regardless of how long the certain runs are.
  Result<UncertainString> s = UncertainString::Parse(
      "ACGT{(A,0.5),(C,0.5)}GGGGTTTT{(A,0.2),(C,0.3),(G,0.5)}AAAACCCC", dna);
  ASSERT_TRUE(s.ok());
  Result<CompressedInstanceTrie> trie = CompressedInstanceTrie::Build(*s);
  ASSERT_TRUE(trie.ok());
  EXPECT_EQ(trie->num_nodes(), 1 + 2 + 6);
  // The plain trie needs a node per character per world path.
  Result<InstanceTrie> plain = InstanceTrie::Build(*s);
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(plain->num_nodes(), 8 * trie->num_nodes());  // 77 vs 9 here
}

TEST(CompressedTrieTest, LeafProbabilitiesMatchWorlds) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(401);
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 10;
  opt.theta = 0.4;
  for (int trial = 0; trial < 50; ++trial) {
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    Result<CompressedInstanceTrie> trie = CompressedInstanceTrie::Build(s);
    ASSERT_TRUE(trie.ok());
    double leaf_sum = 0.0;
    int64_t leaves = 0;
    for (int32_t id = 0; id < trie->num_nodes(); ++id) {
      if (trie->IsLeafNode(id)) {
        leaf_sum += trie->node(id).prob;
        ++leaves;
        EXPECT_EQ(trie->EndDepth(id), s.length());
      }
    }
    EXPECT_EQ(leaves, s.WorldCount());
    EXPECT_NEAR(leaf_sum, 1.0, 1e-9);
  }
}

TEST(CompressedTrieTest, BuildsWherePlainTrieOverflows) {
  // 60 certain chars after 8 uncertain ones: the plain trie needs
  // ~5^8 * 60 nodes; the compressed trie stays below 2 * 5^8.
  UncertainString::Builder b;
  for (int i = 0; i < 8; ++i) {
    b.AddUncertain({{'A', 0.2}, {'C', 0.2}, {'G', 0.2}, {'T', 0.2},
                    {'B', 0.2}});
  }
  for (int i = 0; i < 60; ++i) b.AddCertain('A');
  Result<UncertainString> s = b.Build();
  ASSERT_TRUE(s.ok());
  const int64_t cap = 1 << 20;
  EXPECT_FALSE(InstanceTrie::Build(*s, cap).ok());
  Result<CompressedInstanceTrie> trie =
      CompressedInstanceTrie::Build(*s, cap);
  ASSERT_TRUE(trie.ok());
  EXPECT_LT(trie->num_nodes(), 2 * 390625);
}

class CompressedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressedEquivalenceTest, MatchesPlainVerifierAndBruteForce) {
  const int k = GetParam();
  Alphabet dna = Alphabet::Dna();
  Rng rng(402 + static_cast<uint64_t>(k));
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 9;
  opt.theta = 0.4;
  for (int trial = 0; trial < 120; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    Result<double> compressed = CompressedTrieVerifyProbability(r, s, k);
    ASSERT_TRUE(compressed.ok());
    const double truth = testing::BruteForceMatchProbability(r, s, k);
    EXPECT_NEAR(*compressed, truth, 1e-9)
        << "R=" << r.ToString() << " S=" << s.ToString() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, CompressedEquivalenceTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(CompressedVerifierTest, LongStringsVerifyExactly) {
  // Long strings with sparse uncertainty — the workload the compression
  // exists for.  Compare against the plain verifier where it still fits.
  Alphabet dna = Alphabet::Dna();
  Rng rng(403);
  testing::RandomStringOptions opt;
  opt.min_length = 40;
  opt.max_length = 60;
  opt.theta = 0.08;
  for (int trial = 0; trial < 20; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    testing::RandomStringOptions opt2 = opt;
    opt2.min_length = std::max(1, r.length() - 2);
    opt2.max_length = r.length() + 2;
    const UncertainString s = testing::RandomUncertainString(dna, opt2, rng);
    Result<double> compressed = CompressedTrieVerifyProbability(r, s, 2);
    Result<double> plain = TrieVerifyProbability(r, s, 2);
    ASSERT_TRUE(compressed.ok() && plain.ok());
    EXPECT_NEAR(*compressed, *plain, 1e-9);
  }
}

TEST(CompressedVerifierTest, DecideSimilarAgreesWithExact) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(404);
  testing::RandomStringOptions opt;
  opt.min_length = 2;
  opt.max_length = 8;
  opt.theta = 0.4;
  for (int trial = 0; trial < 150; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const int k = static_cast<int>(rng.UniformInt(0, 2));
    const double tau = rng.UniformDouble();
    Result<CompressedTrieVerifier> verifier =
        CompressedTrieVerifier::Create(r, k);
    ASSERT_TRUE(verifier.ok());
    const ThresholdVerdict verdict = verifier->DecideSimilar(s, tau);
    const double truth = testing::BruteForceMatchProbability(r, s, k);
    EXPECT_EQ(verdict.similar, truth > tau)
        << "R=" << r.ToString() << " S=" << s.ToString() << " k=" << k
        << " tau=" << tau;
    EXPECT_LE(verdict.lower, truth + 1e-9);
    EXPECT_GE(verdict.upper, truth - 1e-9);
  }
}

TEST(CompressedVerifierTest, EmptyAndDegenerateStrings) {
  EXPECT_DOUBLE_EQ(CompressedTrieVerifyProbability(UncertainString(),
                                                   UncertainString(), 0)
                       .value(),
                   1.0);
  const UncertainString a = UncertainString::FromDeterministic("AC");
  EXPECT_DOUBLE_EQ(
      CompressedTrieVerifyProbability(a, UncertainString(), 1).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      CompressedTrieVerifyProbability(a, UncertainString(), 2).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      CompressedTrieVerifyProbability(UncertainString(), a, 2).value(), 1.0);
}

TEST(CompressedVerifierTest, MemorySmallerThanPlainOnSparseUncertainty) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kProtein;
  opt.size = 20;
  opt.theta = 0.1;
  opt.seed = 5;
  const Dataset data = GenerateDataset(opt);
  for (const UncertainString& s : data.strings) {
    Result<CompressedInstanceTrie> compressed =
        CompressedInstanceTrie::Build(s);
    Result<InstanceTrie> plain = InstanceTrie::Build(s);
    ASSERT_TRUE(compressed.ok() && plain.ok());
    EXPECT_LE(compressed->num_nodes(), plain->num_nodes());
  }
}

}  // namespace
}  // namespace ujoin
