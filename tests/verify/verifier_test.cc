#include "verify/verifier.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "text/alphabet.h"
#include "util/rng.h"

namespace ujoin {
namespace {

UncertainString Parse(const char* text, const Alphabet& alphabet) {
  Result<UncertainString> s = UncertainString::Parse(text, alphabet);
  UJOIN_CHECK(s.ok());
  return std::move(s).value();
}

TEST(VerifierTest, DeterministicPairsGiveZeroOrOne) {
  const UncertainString a = UncertainString::FromDeterministic("kitten");
  const UncertainString b = UncertainString::FromDeterministic("sitting");
  for (int k = 0; k <= 5; ++k) {
    Result<double> trie = TrieVerifyProbability(a, b, k);
    Result<double> naive = NaiveVerifyProbability(a, b, k);
    ASSERT_TRUE(trie.ok() && naive.ok());
    const double expected = k >= 3 ? 1.0 : 0.0;  // ed = 3
    EXPECT_DOUBLE_EQ(*trie, expected) << "k=" << k;
    EXPECT_DOUBLE_EQ(*naive, expected) << "k=" << k;
  }
}

TEST(VerifierTest, HandComputedUncertainPair) {
  Alphabet dna = Alphabet::Dna();
  // R = A{(C,0.6),(G,0.4)}, S = AC.  ed = 0 iff R[1]=C (0.6); otherwise 1.
  const UncertainString r = Parse("A{(C,0.6),(G,0.4)}", dna);
  const UncertainString s = UncertainString::FromDeterministic("AC");
  EXPECT_NEAR(TrieVerifyProbability(r, s, 0).value(), 0.6, 1e-12);
  EXPECT_NEAR(TrieVerifyProbability(r, s, 1).value(), 1.0, 1e-12);
  EXPECT_NEAR(NaiveVerifyProbability(r, s, 0).value(), 0.6, 1e-12);
}

// The core exactness property, swept across k: trie == naive == brute force.
class VerifierEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(VerifierEquivalenceTest, TrieEqualsNaiveEqualsBruteForce) {
  const int k = GetParam();
  Alphabet dna = Alphabet::Dna();
  Rng rng(81 + static_cast<uint64_t>(k));
  testing::RandomStringOptions opt;
  opt.min_length = 1;
  opt.max_length = 8;
  opt.theta = 0.45;
  for (int trial = 0; trial < 150; ++trial) {
    const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    Result<double> trie = TrieVerifyProbability(r, s, k);
    Result<double> naive = NaiveVerifyProbability(r, s, k);
    ASSERT_TRUE(trie.ok() && naive.ok());
    const double truth = testing::BruteForceMatchProbability(r, s, k);
    EXPECT_NEAR(*trie, truth, 1e-9)
        << "R=" << r.ToString() << " S=" << s.ToString() << " k=" << k;
    EXPECT_NEAR(*naive, truth, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, VerifierEquivalenceTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(VerifierTest, ReusableVerifierAcrossCandidates) {
  Alphabet dna = Alphabet::Dna();
  Rng rng(83);
  testing::RandomStringOptions opt;
  opt.min_length = 4;
  opt.max_length = 8;
  opt.theta = 0.4;
  const UncertainString r = testing::RandomUncertainString(dna, opt, rng);
  Result<TrieVerifier> verifier = TrieVerifier::Create(r, 2);
  ASSERT_TRUE(verifier.ok());
  for (int trial = 0; trial < 30; ++trial) {
    const UncertainString s = testing::RandomUncertainString(dna, opt, rng);
    const double truth = testing::BruteForceMatchProbability(r, s, 2);
    EXPECT_NEAR(verifier->Probability(s), truth, 1e-9);
  }
}

TEST(VerifierTest, StatsCountPrunedExploration) {
  Alphabet dna = Alphabet::Dna();
  // A candidate with no prefix in common: the on-demand walk must touch far
  // fewer nodes than S has worlds.
  UncertainString::Builder rb;
  for (int i = 0; i < 10; ++i) rb.AddCertain('A');
  const UncertainString r = rb.Build().value();
  UncertainString::Builder sb;
  for (int i = 0; i < 10; ++i) {
    sb.AddUncertain({{'C', 0.5}, {'G', 0.5}});
  }
  const UncertainString s = sb.Build().value();  // 1024 worlds, none similar
  VerifyStats stats;
  Result<double> prob = TrieVerifyProbability(r, s, 2, VerifyOptions{}, &stats);
  ASSERT_TRUE(prob.ok());
  EXPECT_DOUBLE_EQ(*prob, 0.0);
  EXPECT_LT(stats.explored_s_nodes, 100);  // prefix pruning cuts the walk
  EXPECT_EQ(stats.r_trie_nodes, 11);
}

TEST(VerifierTest, NaiveCapReturnsResourceExhausted) {
  UncertainString::Builder b;
  for (int i = 0; i < 16; ++i) b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  const UncertainString s = b.Build().value();
  VerifyOptions options;
  options.max_world_pairs = 1000;
  Result<double> out = NaiveVerifyProbability(s, s, 1, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(VerifierTest, TrieCapReturnsResourceExhausted) {
  UncertainString::Builder b;
  for (int i = 0; i < 24; ++i) b.AddUncertain({{'A', 0.5}, {'C', 0.5}});
  const UncertainString s = b.Build().value();
  VerifyOptions options;
  options.max_trie_nodes = 1000;
  Result<TrieVerifier> verifier = TrieVerifier::Create(s, 1, options);
  ASSERT_FALSE(verifier.ok());
  EXPECT_EQ(verifier.status().code(), StatusCode::kResourceExhausted);
}

TEST(VerifierTest, EmptyStringsMatchTrivially) {
  EXPECT_DOUBLE_EQ(
      TrieVerifyProbability(UncertainString(), UncertainString(), 0).value(),
      1.0);
  const UncertainString a = UncertainString::FromDeterministic("AC");
  EXPECT_DOUBLE_EQ(TrieVerifyProbability(a, UncertainString(), 1).value(), 0.0);
  EXPECT_DOUBLE_EQ(TrieVerifyProbability(a, UncertainString(), 2).value(), 1.0);
  EXPECT_DOUBLE_EQ(TrieVerifyProbability(UncertainString(), a, 2).value(), 1.0);
}

TEST(VerifierTest, LengthGapBeyondKIsZero) {
  const UncertainString a = UncertainString::FromDeterministic("AAAAAAAA");
  const UncertainString b = UncertainString::FromDeterministic("AAA");
  EXPECT_DOUBLE_EQ(TrieVerifyProbability(a, b, 3).value(), 0.0);
  EXPECT_DOUBLE_EQ(NaiveVerifyProbability(a, b, 3).value(), 0.0);
}

}  // namespace
}  // namespace ujoin
