#include "datagen/datagen.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace ujoin {
namespace {

TEST(DatagenTest, DeterministicForSameSeed) {
  DatasetOptions opt;
  opt.size = 20;
  opt.seed = 99;
  const Dataset a = GenerateDataset(opt);
  const Dataset b = GenerateDataset(opt);
  ASSERT_EQ(a.strings.size(), b.strings.size());
  for (size_t i = 0; i < a.strings.size(); ++i) {
    EXPECT_TRUE(a.strings[i] == b.strings[i]);
  }
  opt.seed = 100;
  const Dataset c = GenerateDataset(opt);
  int differing = 0;
  for (size_t i = 0; i < a.strings.size(); ++i) {
    differing += !(a.strings[i] == c.strings[i]);
  }
  EXPECT_GT(differing, 10);
}

TEST(DatagenTest, RespectsLengthBounds) {
  DatasetOptions opt;
  opt.kind = DatasetOptions::Kind::kNames;
  opt.size = 200;
  const Dataset names = GenerateDataset(opt);
  for (const UncertainString& s : names.strings) {
    EXPECT_GE(s.length(), 10);
    EXPECT_LE(s.length(), 35);
  }
  opt.kind = DatasetOptions::Kind::kProtein;
  const Dataset protein = GenerateDataset(opt);
  for (const UncertainString& s : protein.strings) {
    EXPECT_GE(s.length(), 20);
    EXPECT_LE(s.length(), 45);
  }
}

TEST(DatagenTest, ThetaControlsUncertainFraction) {
  for (double theta : {0.1, 0.2, 0.4}) {
    DatasetOptions opt;
    opt.size = 200;
    opt.theta = theta;
    opt.seed = 7;
    const Dataset data = GenerateDataset(opt);
    int64_t uncertain = 0, total = 0;
    for (const UncertainString& s : data.strings) {
      uncertain += s.NumUncertainPositions();
      total += s.length();
    }
    const double measured =
        static_cast<double>(uncertain) / static_cast<double>(total);
    EXPECT_NEAR(measured, theta, 0.05) << "theta=" << theta;
  }
}

TEST(DatagenTest, GammaControlsMeanAlternatives) {
  DatasetOptions opt;
  opt.size = 300;
  opt.theta = 0.3;
  opt.gamma = 5;
  const Dataset data = GenerateDataset(opt);
  int64_t alternatives = 0, uncertain = 0;
  for (const UncertainString& s : data.strings) {
    for (int i = 0; i < s.length(); ++i) {
      if (!s.IsCertain(i)) {
        alternatives += s.NumAlternatives(i);
        ++uncertain;
      }
    }
  }
  ASSERT_GT(uncertain, 0);
  const double mean =
      static_cast<double>(alternatives) / static_cast<double>(uncertain);
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 6.5);
}

TEST(DatagenTest, SymbolsStayInAlphabet) {
  for (DatasetOptions::Kind kind :
       {DatasetOptions::Kind::kNames, DatasetOptions::Kind::kProtein}) {
    DatasetOptions opt;
    opt.kind = kind;
    opt.size = 50;
    const Dataset data = GenerateDataset(opt);
    for (const UncertainString& s : data.strings) {
      for (int i = 0; i < s.length(); ++i) {
        double sum = 0.0;
        for (const CharProb& cp : s.AlternativesAt(i)) {
          EXPECT_TRUE(data.alphabet.Contains(cp.symbol));
          sum += cp.prob;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
      }
    }
  }
}

TEST(DatagenTest, MaxUncertainPositionsCap) {
  DatasetOptions opt;
  opt.size = 100;
  opt.theta = 0.5;
  opt.max_uncertain_positions = 3;
  const Dataset data = GenerateDataset(opt);
  for (const UncertainString& s : data.strings) {
    EXPECT_LE(s.NumUncertainPositions(), 3);
  }
}

TEST(DatagenTest, AppendSelfMultipliesLength) {
  DatasetOptions opt;
  opt.size = 5;
  const Dataset data = GenerateDataset(opt);
  const UncertainString& s = data.strings[0];
  for (int times = 0; times <= 3; ++times) {
    const UncertainString longer = AppendSelf(s, times);
    EXPECT_EQ(longer.length(), s.length() * (times + 1));
    EXPECT_EQ(longer.NumUncertainPositions(),
              s.NumUncertainPositions() * (times + 1));
  }
}

TEST(DatagenTest, CapUncertainPositionsDeterminizesTail) {
  DatasetOptions opt;
  opt.size = 30;
  opt.theta = 0.4;
  const Dataset data = GenerateDataset(opt);
  for (const UncertainString& s : data.strings) {
    const UncertainString capped = CapUncertainPositions(s, 2);
    EXPECT_LE(capped.NumUncertainPositions(), 2);
    EXPECT_EQ(capped.length(), s.length());
    EXPECT_EQ(capped.MostLikelyInstance(), s.MostLikelyInstance());
  }
}

TEST(DatagenTest, SaveLoadRoundTrip) {
  DatasetOptions opt;
  opt.size = 40;
  opt.theta = 0.3;
  const Dataset data = GenerateDataset(opt);
  const std::string path = ::testing::TempDir() + "/ujoin_datagen_test.txt";
  ASSERT_TRUE(SaveDataset(data, path).ok());
  Result<std::vector<UncertainString>> loaded =
      LoadDataset(path, data.alphabet);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), data.strings.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    ASSERT_EQ((*loaded)[i].length(), data.strings[i].length());
    for (int pos = 0; pos < (*loaded)[i].length(); ++pos) {
      auto got = (*loaded)[i].AlternativesAt(pos);
      auto want = data.strings[i].AlternativesAt(pos);
      ASSERT_EQ(got.size(), want.size());
      for (size_t a = 0; a < got.size(); ++a) {
        EXPECT_EQ(got[a].symbol, want[a].symbol);
        EXPECT_NEAR(got[a].prob, want[a].prob, 1e-6);  // %.6g serialization
      }
    }
  }
  std::remove(path.c_str());
}

TEST(DatagenTest, LoadRejectsMalformedFile) {
  const std::string path = ::testing::TempDir() + "/ujoin_datagen_bad.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("this is not { valid\n", f);
    fclose(f);
  }
  Result<std::vector<UncertainString>> loaded =
      LoadDataset(path, Alphabet::Names());
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatagenTest, MissingFileIsIoError) {
  Result<std::vector<UncertainString>> loaded =
      LoadDataset("/nonexistent/path/file.txt", Alphabet::Names());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ujoin
