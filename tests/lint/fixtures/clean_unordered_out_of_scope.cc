// ujoin-lint-fixture: as=src/eed/rival_model.cc rule=unordered-iteration expect=0
//
// Scoping check: this file iterates an unordered_map, but its fixture path
// is outside the deterministic-output file set (src/eed is the rival
// baseline, which never emits join results), so the rule must not fire.
#include <string>
#include <unordered_map>
#include <vector>

namespace ujoin {

size_t TotalPostings(
    const std::unordered_map<std::string, std::vector<int>>& lists) {
  size_t total = 0;
  for (const auto& [key, list] : lists) {  // out of scope: allowed
    total += list.size();
  }
  return total;
}

}  // namespace ujoin
