// ujoin-lint-fixture: as=src/index/flat_postings.cc rule=probe-path-alloc expect=0
//
// Suppression check: the same violations as bad_probe_path_alloc.cc, each
// carrying an explicit `ujoin-lint: allow(...)` escape (same line or the
// line above).  This mirrors the legacy allocating Query overloads kept for
// API compatibility.
#include <string>
#include <vector>

namespace ujoin {

struct Posting {
  int id;
};

class FlatPostings {
 public:
  std::vector<Posting> FindAll(const std::string& key) const {
    // Legacy convenience overload, not used on the hot path.
    // ujoin-lint: allow(probe-path-alloc) -- allocating API kept for tests
    std::vector<Posting> out;
    out.push_back(Posting{static_cast<int>(key.size())});
    std::string copy = key;  // ujoin-lint: allow(probe-path-alloc)
    return out;
  }
};

}  // namespace ujoin
