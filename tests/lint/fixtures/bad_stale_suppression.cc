// ujoin-lint-fixture: as=src/index/flat_postings.cc rule=stale-suppression expect=3
//
// Stale suppressions: an `ujoin-lint: allow(<rule>)` that absorbs no
// violation is itself a violation — it either outlived the code it
// excused or names the wrong rule, and both silently disable review.
#include <string>
#include <vector>

namespace ujoin {

class FlatPostings {
 public:
  int CountFor(int key) const {
    // The allocation this once excused was refactored away; the escape
    // hatch is now held open for whatever lands on the next line.
    // ujoin-lint: allow(probe-path-alloc)
    return key + size_;
  }

  int SizeTimes(int factor) const {
    // A typo'd rule name never matched anything, so the "suppressed"
    // violation would still have been reported had there been one.
    return size_ * factor;  // ujoin-lint: allow(probe-path-allocs)
  }

  int Saturate(int v) const {
    // Allowing the staleness rule itself is rejected: delete stale
    // comments instead of suppressing the report about them.
    return v < 0 ? 0 : v;  // ujoin-lint: allow(stale-suppression)
  }

 private:
  int size_ = 0;
};

}  // namespace ujoin
