// ujoin-lint-fixture: as=src/join/search.cc rule=flight-macro-only expect=2
//
// Seeded violations: pipeline code recording flight events by calling the
// FlightRecorder directly.  These sites keep running when -DUJOIN_OBS=OFF
// is supposed to compile instrumentation out, and they dodge the
// flight-path effects contract rooted at the macro's expansion.
namespace ujoin {

namespace obs {
enum class FlightEvent : int { kQueryBegin, kQueryEnd };
class FlightRecorder {
 public:
  void RecordEvent(FlightEvent kind, long a, long b);
};
FlightRecorder* GlobalFlightRecorder();
}  // namespace obs

void ProbeOnce(long deadline_ns) {
  obs::GlobalFlightRecorder()->RecordEvent(  // violation
      obs::FlightEvent::kQueryBegin, deadline_ns, 0);
}

void FinishProbe(obs::FlightRecorder& recorder, long hits) {
  recorder.RecordEvent(obs::FlightEvent::kQueryEnd, hits, 0);  // violation
}

}  // namespace ujoin
