// ujoin-lint-fixture: as=src/obs/report.cc rule=obs-macro-only expect=0
//
// Scoping check: inside src/obs/ the Recorder API is the implementation
// itself, so direct calls are allowed.
namespace ujoin {
namespace obs {

enum class Counter : int { kProbes };
class Recorder {
 public:
  void AddCounter(Counter c, long delta);
};

void FoldInto(Recorder* total) {
  total->AddCounter(Counter::kProbes, 1);  // in src/obs/: allowed
}

}  // namespace obs
}  // namespace ujoin
