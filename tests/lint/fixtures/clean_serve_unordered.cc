// ujoin-lint-fixture: as=src/serve/search_server.cc rule=unordered-iteration expect=0
//
// Clean counterpart of bad_serve_unordered.cc: the serve layer renders
// hits in the id-sorted order Search returns them (a vector), and unordered
// containers appear only for point lookups whose order is never observed.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace ujoin::serve {

class ResponseRenderer {
 public:
  void RenderHits() const {
    for (const auto& [id, prob] : hits_) {  // vector: Search's sorted order
      std::printf("{\"id\":%d,\"probability\":%f}", id, prob);
    }
  }

  double ProbabilityOf(int id) const {
    auto it = probs_.find(id);  // point lookup: order not observed
    return it == probs_.end() ? 0.0 : it->second;
  }

 private:
  std::vector<std::pair<int, double>> hits_;
  std::unordered_map<int, double> probs_;
};

}  // namespace ujoin::serve
