// ujoin-lint-fixture: as=src/obs/watchdog.cc rule=flight-macro-only expect=0
//
// Scoping check: inside src/obs/ the FlightRecorder API is the
// implementation itself — the watchdog records its own capture events —
// so direct RecordEvent calls are allowed.  Taking the recorder pointer
// (GlobalFlightRecorder()) elsewhere is also fine; only recording is
// confined to the macro.
namespace ujoin {
namespace obs {

enum class FlightEvent : int { kStallCaptured };
class FlightRecorder {
 public:
  void RecordEvent(FlightEvent kind, long a, long b);
};

void CaptureStall(FlightRecorder* recorder, long slot, long elapsed_ns) {
  recorder->RecordEvent(FlightEvent::kStallCaptured, slot,
                        elapsed_ns);  // in src/obs/: allowed
}

}  // namespace obs
}  // namespace ujoin
