// ujoin-lint-fixture: as=src/join/self_join.cc rule=obs-macro-only expect=0
//
// Clean counterpart of bad_obs_direct.cc: recording goes through the
// UJOIN_OBS_* macros (null-guarded, compiled out under -DUJOIN_OBS=OFF);
// *reading* a recorder (counter()/hist()/gauge()) is always allowed.
#define UJOIN_OBS_HIST(recorder, id, value) \
  do {                                      \
  } while (0)
#define UJOIN_OBS_COUNTER(recorder, id, delta) \
  do {                                         \
  } while (0)
#define UJOIN_OBS_GAUGE(recorder, id, value) \
  do {                                       \
  } while (0)

namespace ujoin {

namespace obs {
enum class Hist : int { kProbeLatencyNs };
enum class Counter : int { kProbes };
class Recorder {
 public:
  long counter(Counter c) const;
};
}  // namespace obs

void ProbeOnce(obs::Recorder* rec, long elapsed_ns) {
  UJOIN_OBS_HIST(rec, obs::Hist::kProbeLatencyNs, elapsed_ns);
  UJOIN_OBS_COUNTER(rec, obs::Counter::kProbes, 1);
}

long ProbesSoFar(const obs::Recorder& rec) {
  return rec.counter(obs::Counter::kProbes);  // reads are fine
}

}  // namespace ujoin
