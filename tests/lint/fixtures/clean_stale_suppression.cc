// ujoin-lint-fixture: as=src/index/flat_postings.cc rule=stale-suppression expect=0
//
// Clean counterpart of bad_stale_suppression.cc: every suppression below
// absorbs a real violation on its own or the following line, so none is
// stale.
#include <string>
#include <vector>

namespace ujoin {

class FlatPostings {
 public:
  std::vector<int> IdsFor(const std::string& key) const {
    // Legacy allocating overload kept for tests: both escapes are used.
    // ujoin-lint: allow(probe-path-alloc) -- allocating API kept for tests
    std::vector<int> out;
    std::string copy = key;  // ujoin-lint: allow(probe-path-alloc)
    out.push_back(static_cast<int>(copy.size()));
    return out;
  }
};

}  // namespace ujoin
