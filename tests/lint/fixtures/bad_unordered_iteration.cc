// ujoin-lint-fixture: as=src/join/pair_collector.cc rule=unordered-iteration expect=3
//
// Seeded violations: iterating unordered containers in a file that (per its
// fixture path) produces join results.  The iteration order depends on hash
// seeding and insertion history, so emitted pairs would not be
// byte-identical across runs or thread counts.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ujoin {

class PairCollector {
 public:
  void Emit() const {
    for (const auto& [key, count] : counts_) {  // violation: range-for
      std::printf("%s %d\n", key.c_str(), count);
    }
  }

  std::vector<int> SortedIds() const {
    std::vector<int> out;
    for (auto it = ids_.begin(); it != ids_.end(); ++it) {  // violation
      out.push_back(*it);
    }
    return out;
  }

 private:
  std::unordered_map<std::string, int> counts_;
  std::unordered_set<int> ids_;
};

void DumpTemporary() {
  for (int id : std::unordered_set<int>{3, 1, 2}) {  // violation: temporary
    std::printf("%d\n", id);
  }
}

}  // namespace ujoin
