// ujoin-lint-fixture: as=src/index/segment_index.cc rule=probe-path-alloc expect=2
//
// Tracker regression (PR 9): operator definitions get frames.  The PR 4
// tracker returned no enclosing function for `operator==` and for
// out-of-line template members whose bodies follow a constructor-style
// init list, so local allocations inside them were attributed to file
// scope and the local-container rule skipped them.
#include <string>
#include <vector>

namespace ujoin {

struct SegmentKey {
  int length;
  int ordinal;
};

bool operator==(const SegmentKey& a, const SegmentKey& b) {
  std::vector<int> parts{a.length, a.ordinal};  // local container
  return parts[0] == b.length && parts[1] == b.ordinal;
}

template <typename P>
class PostingCursor {
 public:
  const P& operator[](size_t i) const {
    std::string tag(i, 'x');  // local std::string inside operator[]
    return postings_[tag.size()];
  }

 private:
  std::vector<P> postings_;
};

}  // namespace ujoin
