// ujoin-lint-fixture: as=src/datagen/seeded.cc rule=rng-source expect=0
//
// Clean counterpart of bad_rng_source.cc: the seeded repo Rng, plus
// lookalike tokens that must NOT fire (identifiers containing "rand" or
// "time", method calls named time(), and banned names inside comments or
// string literals).
#include <cstdint>
#include <string>

#include "util/rng.h"

namespace ujoin {

struct Span {
  long time() const { return 0; }  // member named time: not ::time()
};

int SeededNoise(uint64_t seed) {
  Rng rng(seed);
  return static_cast<int>(rng.Uniform(100));
}

long ElapsedTime(const Span& span) {
  // rand() and time(NULL) in a comment must not fire.
  const std::string msg = "do not call rand() or time(NULL)";
  long lifetime(0);  // declarator named lifetime(...): not time()
  lifetime += span.time();
  return lifetime + static_cast<long>(msg.size());
}

}  // namespace ujoin
