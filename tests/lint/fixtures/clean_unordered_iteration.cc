// ujoin-lint-fixture: as=src/join/pair_collector.cc rule=unordered-iteration expect=0
//
// Clean counterpart of bad_unordered_iteration.cc: unordered containers
// used only for O(1) membership/lookup (order never observed), iteration
// restricted to ordered containers.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ujoin {

class PairCollector {
 public:
  bool Seen(int id) const { return ids_.count(id) > 0; }

  int CountOf(const std::string& key) const {
    auto it = counts_.find(key);  // point lookup: order not observed
    return it == counts_.end() ? 0 : it->second;
  }

  void Emit() const {
    for (const auto& [key, count] : sorted_counts_) {  // ordered: fine
      std::printf("%s %d\n", key.c_str(), count);
    }
    for (int id : id_list_) {  // vector: insertion order, deterministic
      std::printf("%d\n", id);
    }
  }

 private:
  std::unordered_map<std::string, int> counts_;
  std::unordered_set<int> ids_;
  std::map<std::string, int> sorted_counts_;
  std::vector<int> id_list_;
};

}  // namespace ujoin
