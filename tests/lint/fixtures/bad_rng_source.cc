// ujoin-lint-fixture: as=src/datagen/seeded.cc rule=rng-source expect=4
//
// Seeded violations: every ad-hoc entropy source the rng-source rule must
// catch.  Each one makes a run irreproducible across machines or reruns.
#include <cstdlib>
#include <ctime>
#include <random>

namespace ujoin {

int UnseededNoise() {
  return rand() % 100;  // violation: C rand()
}

void ReseedFromClock() {
  srand(static_cast<unsigned>(42));  // violation: srand()
}

long WallClockSeed() {
  return time(nullptr);  // violation: time()
}

unsigned HardwareSeed() {
  std::random_device rd;  // violation: std::random_device
  return rd();
}

}  // namespace ujoin
