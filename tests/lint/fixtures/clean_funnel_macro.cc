// ujoin-lint-fixture: as=src/join/search.cc rule=obs-macro-only expect=0
//
// Clean counterpart of bad_funnel_direct.cc: funnel recording goes through
// UJOIN_OBS_FUNNEL (null-guarded, compiled out under -DUJOIN_OBS=OFF);
// *reading* the funnel (funnel_entered()/funnel_survived()) is always
// allowed.
#define UJOIN_OBS_FUNNEL(recorder, stage, entered, survived) \
  do {                                                       \
  } while (0)

namespace ujoin {

namespace obs {
enum class FunnelStage : int { kQgram, kVerify };
class Recorder {
 public:
  long funnel_entered(FunnelStage s) const;
};
}  // namespace obs

void RecordQueryFunnel(obs::Recorder* rec, long window, long candidates) {
  UJOIN_OBS_FUNNEL(rec, obs::FunnelStage::kQgram, window, candidates);
}

long QgramEntered(const obs::Recorder& rec) {
  return rec.funnel_entered(obs::FunnelStage::kQgram);  // reads are fine
}

}  // namespace ujoin
