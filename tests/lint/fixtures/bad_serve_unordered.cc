// ujoin-lint-fixture: as=src/serve/search_server.cc rule=unordered-iteration expect=2
//
// Seeded violations: the serve layer renders response lines and metric
// snapshots whose bytes clients compare verbatim (the differential harness
// re-renders them), so iterating an unordered container on any serve path
// would make response or snapshot bytes hash-seed dependent.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace ujoin::serve {

class ResponseRenderer {
 public:
  void RenderHits() const {
    for (const auto& [id, prob] : hits_by_id_) {  // violation: range-for
      std::printf("{\"id\":%d,\"probability\":%f}", id, prob);
    }
  }

  void RenderSnapshot() const {
    for (auto it = hits_by_id_.begin(); it != hits_by_id_.end();  // violation
         ++it) {
      std::printf("%d\n", it->first);
    }
  }

 private:
  std::unordered_map<int, double> hits_by_id_;
};

}  // namespace ujoin::serve
