// ujoin-lint-fixture: as=src/serve/search_server.cc rule=query-log-api expect=3
//
// Seeded violations: the server rendering JSON itself instead of going
// through the shared renderers in protocol.cc / the obs::QueryLog API.
// Ad-hoc rendering creates a serialization path no byte-golden test or
// schema validator covers.  Every mention of the type counts (including
// the stub declaration below): the rule is token-based by design, so
// even smuggling the writer in through an alias or member is flagged.
namespace ujoin {

namespace obs {
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
};
}  // namespace obs

namespace serve {

void HandOff(int fd) {
  obs::JsonWriter w;  // violation: serve-layer JSON outside protocol.cc
  w.BeginObject();
  w.EndObject();
  (void)fd;
}

obs::JsonWriter* LeakWriter();  // violation: even the type name is banned

}  // namespace serve
}  // namespace ujoin
