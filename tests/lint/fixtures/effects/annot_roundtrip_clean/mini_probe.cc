// ujoin-effects-fixture: as=src/filter/mini_probe.cc
//
// Annotation round trip, clean half: ReserveLane's allocation is blessed
// by a declares(alloc), so the probe root is clean and the annotation is
// load-bearing (not stale).  The `annot_roundtrip_removed` twin is this
// file minus the annotation line; the diff flips the tree to one
// violation with the Query -> ReserveLane witness.
#include <vector>

namespace ujoin {

class InvertedSegmentIndex {
 public:
  int Query(int id) const;
};

int ReserveLane(int n) {
  // ujoin-effect: declares(alloc) -- lane tables are sized once at freeze.
  std::vector<int> lane(static_cast<size_t>(n));
  return static_cast<int>(lane.size());
}

int InvertedSegmentIndex::Query(int id) const { return ReserveLane(id); }

}  // namespace ujoin
