// ujoin-effects-fixture: as=src/filter/mini_probe.cc
//
// Annotation round trip, violating half: byte-identical to the
// `annot_roundtrip_clean` twin except the declares(alloc) line is gone,
// so ReserveLane's allocation reaches the probe root unblessed.
#include <vector>

namespace ujoin {

class InvertedSegmentIndex {
 public:
  int Query(int id) const;
};

int ReserveLane(int n) {
  std::vector<int> lane(static_cast<size_t>(n));
  return static_cast<int>(lane.size());
}

int InvertedSegmentIndex::Query(int id) const { return ReserveLane(id); }

}  // namespace ujoin
