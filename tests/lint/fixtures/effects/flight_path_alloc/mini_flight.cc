// ujoin-effects-fixture: as=src/obs/mini_flight.cc
//
// Seeded violation for the flight-path contract: a helper two hops below
// FlightRecorder::RecordEvent formats the event label with std::to_string,
// which allocates.  The record path runs inside the zero-allocation probe
// path, so this must be flagged (multi-hop witness: RecordEvent ->
// StampLabel -> RenderLabel).
#include <string>

namespace ujoin {
namespace obs {

std::string RenderLabel(int kind) {
  return std::to_string(kind);  // allocates: forbidden on the record path
}

int StampLabel(int kind) {
  return static_cast<int>(RenderLabel(kind).size());
}

class FlightRecorder {
 public:
  void RecordEvent(int kind, long a, long b);
};

void FlightRecorder::RecordEvent(int kind, long a, long b) {
  (void)a;
  (void)b;
  (void)StampLabel(kind);
}

}  // namespace obs
}  // namespace ujoin
