// ujoin-effects-fixture: as=src/index/mini_index.cc
#include <vector>

namespace ujoin {

int GrowPool(int n) {
  std::vector<int> pool(static_cast<size_t>(n));  // per-probe pool growth
  return static_cast<int>(pool.size());
}

int InvertedSegmentIndex::BuildCandidates(int id) const {
  return GrowPool(id);
}

}  // namespace ujoin
