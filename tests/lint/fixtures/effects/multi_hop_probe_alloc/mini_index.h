// ujoin-effects-fixture: as=src/index/mini_index.h
//
// Seeded multi-hop violation: the probe root allocates nowhere itself —
// the allocation is two calls away, across a header/impl split.  The
// analyzer must produce the full chain as the witness.

namespace ujoin {

class InvertedSegmentIndex {
 public:
  int Query(int id) const { return BuildCandidates(id); }

 private:
  int BuildCandidates(int id) const;
};

}  // namespace ujoin
