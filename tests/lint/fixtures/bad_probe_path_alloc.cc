// ujoin-lint-fixture: as=src/index/flat_postings.cc rule=probe-path-alloc expect=4
//
// Seeded violations: allocations inside probe-path functions that are NOT
// on the build/freeze whitelist.  Find() runs once per posting-list lookup;
// any of these would break the steady-state zero-allocation guarantee the
// operator-new hook tests enforce at runtime.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace ujoin {

struct Posting {
  int id;
};

class FlatPostings {
 public:
  const Posting* Find(const std::string& key) const {
    std::vector<char> copy(key.begin(), key.end());  // violation: local container
    std::string padded = key + "\0";                 // violation: local string
    int* scratch = new int[4];                       // violation: new
    delete[] scratch;
    void* raw = std::malloc(copy.size());            // violation: malloc
    std::free(raw);
    return padded.empty() ? nullptr : &postings_[0];
  }

 private:
  std::vector<Posting> postings_;
};

}  // namespace ujoin
