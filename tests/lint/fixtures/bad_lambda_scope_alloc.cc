// ujoin-lint-fixture: as=src/filter/probe_set.cc rule=probe-path-alloc expect=2
//
// Tracker regression (PR 9): lambda bodies get their own frames.  A
// lambda defined at namespace scope in a probe-path file is function
// scope — its local allocations are violations — and a lambda inside a
// non-whitelisted function does not hide its enclosing function's name.
// The PR 4 tracker attributed the first to "file scope" (local-container
// rule skipped) and both allocations went unreported.
#include <string>
#include <vector>

namespace ujoin {

// File-scope lambda: runs per probe, so its locals are steady-state.
const auto kNormalizeKey = [](const std::string& key) {
  std::string lowered = key;  // local std::string inside the lambda body
  return lowered;
};

int ProbeWidth(const std::vector<int>& widths) {
  const auto pick = [&](int index) {
    std::vector<int> staged(widths);  // local container inside the lambda
    return staged[static_cast<size_t>(index)];
  };
  return pick(0);
}

}  // namespace ujoin
