// ujoin-lint-fixture: as=src/index/flat_postings.cc rule=probe-path-alloc expect=0
//
// Tracker regression (PR 9): constructor init lists.  The PR 4 tracker
// attributed a constructor body following `: a_(x), b_(y)` to the last
// initializer name (`slots_` here), so the whitelisted FlatPostings
// constructor was flagged for its build-time allocations.  The fixed
// tracker attributes the body to the constructor itself.  Lambdas defined
// inside a whitelisted build function inherit its whitelist membership
// (named_base), so the comparator below is clean too.
#include <algorithm>
#include <string>
#include <vector>

namespace ujoin {

class FlatPostings {
 public:
  FlatPostings(size_t keys, size_t stride)
      : stride_(stride),
        slots_(keys * 2) {
    std::vector<char> arena(keys * stride);  // build-time: whitelisted
    arena_ = arena;
  }

  void Freeze() {
    std::vector<int> order(slots_);  // build-time: whitelisted
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      std::string ka(1, arena_[static_cast<size_t>(a)]);  // in Freeze's lambda
      std::string kb(1, arena_[static_cast<size_t>(b)]);
      return ka < kb;
    });
  }

 private:
  size_t stride_;
  size_t slots_;
  std::vector<char> arena_;
};

}  // namespace ujoin
