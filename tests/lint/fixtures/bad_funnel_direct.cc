// ujoin-lint-fixture: as=src/join/search.cc rule=obs-macro-only expect=2
//
// Seeded violations: driver code recording the filter funnel by calling
// Recorder::AddFunnel directly.  These sites lose the null-recorder guard
// and keep running when -DUJOIN_OBS=OFF is supposed to compile
// instrumentation out.
namespace ujoin {

namespace obs {
enum class FunnelStage : int { kQgram, kVerify };
class Recorder {
 public:
  void AddFunnel(FunnelStage s, long entered, long survived);
};
}  // namespace obs

void RecordQueryFunnel(obs::Recorder* rec, long window, long candidates) {
  rec->AddFunnel(obs::FunnelStage::kQgram, window, candidates);  // violation
}

void RecordVerifyFunnel(obs::Recorder& rec, long verified, long emitted) {
  rec.AddFunnel(obs::FunnelStage::kVerify, verified, emitted);  // violation
}

}  // namespace ujoin
