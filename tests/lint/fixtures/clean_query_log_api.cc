// ujoin-lint-fixture: as=src/serve/protocol.cc rule=query-log-api expect=0
//
// Scoping check: protocol.cc is the serve layer's designated rendering
// TU — the wire responses and the /healthz body are built here, covered
// by the byte-golden protocol tests — so JsonWriter use is allowed.
namespace ujoin {

namespace obs {
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
};
}  // namespace obs

namespace serve {

void RenderSomething() {
  obs::JsonWriter w;  // in protocol.cc: allowed
  w.BeginObject();
  w.EndObject();
}

}  // namespace serve
}  // namespace ujoin
