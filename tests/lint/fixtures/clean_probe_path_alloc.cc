// ujoin-lint-fixture: as=src/index/flat_postings.cc rule=probe-path-alloc expect=0
//
// Clean counterpart of bad_probe_path_alloc.cc: allocations live in the
// whitelisted build/freeze functions, the probe path only reads members or
// appends to retained workspace storage (amortized-zero in steady state),
// and member container *declarations* at class scope are not violations.
#include <string>
#include <vector>

namespace ujoin {

struct Posting {
  int id;
};

class FlatPostings {
 public:
  void Add(const std::string& key, Posting posting) {
    // Whitelisted build function: allocation is fine here.
    std::vector<char> staged(key.begin(), key.end());
    key_arena_.insert(key_arena_.end(), staged.begin(), staged.end());
    postings_.push_back(posting);
  }

  void Freeze() {
    std::vector<Posting> packed;  // whitelisted freeze function
    packed.reserve(postings_.size());
    for (const Posting& p : postings_) packed.push_back(p);
    postings_ = std::move(packed);
  }

  const Posting* Find(std::size_t i, std::vector<int>* workspace) const {
    workspace->push_back(static_cast<int>(i));  // retained workspace: fine
    return i < postings_.size() ? &postings_[i] : nullptr;
  }

 private:
  std::vector<Posting> postings_;   // member declaration: fine
  std::vector<char> key_arena_;     // member declaration: fine
};

}  // namespace ujoin
