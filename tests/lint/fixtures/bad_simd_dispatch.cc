// ujoin-lint-fixture: as=src/util/simd_widen.h rule=simd-dispatch-fallback expect=1
//
// Seeded violation: a vector kernel variant (WidenSumAvx2) with no
// scalar::WidenSum anywhere in the kernel layer.  Without the scalar twin
// there is no -DUJOIN_SIMD=off implementation and no oracle for the
// differential test — the dispatch entry below can only ever call the
// vector path.
#include <immintrin.h>
#include <cstddef>

namespace ujoin {
namespace simd {

namespace detail {
__attribute__((target("avx2"))) inline double WidenSumAvx2(
    const double* a, std::size_t n) {  // violation: no scalar::WidenSum
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  double s[4];
  _mm256_storeu_pd(s, acc);
  for (; i < n; ++i) s[i & 3] += a[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}
}  // namespace detail

inline double WidenSum(const double* a, std::size_t n) {
  return detail::WidenSumAvx2(a, n);
}

}  // namespace simd
}  // namespace ujoin
