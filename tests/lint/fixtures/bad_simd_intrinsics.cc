// ujoin-lint-fixture: as=src/filter/fast_cdf.cc rule=simd-intrinsics expect=5
//
// Seeded violations: raw vector code outside the kernel layer.  Each form
// bypasses the dispatched wrappers in util/simd.h, so it would break the
// -DUJOIN_SIMD=off build, non-x86 targets, or escape the differential
// kernel test.
#include <immintrin.h>  // violation: intrinsics header include
#include <cstddef>

namespace ujoin {

double HandRolledSum(const double* a, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // violation: x86 SIMD intrinsic
  for (std::size_t i = 0; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));  // violation
  }
  double s[4];
  _mm256_storeu_pd(s, acc);  // violation: x86 SIMD intrinsic
  return (s[0] + s[1]) + (s[2] + s[3]);
}

void HandRolledPrefetch(const double* a) {
  __builtin_prefetch(a);  // violation: __builtin_prefetch
}

}  // namespace ujoin
