// ujoin-lint-fixture: as=src/util/simd_neon.h rule=simd-intrinsics expect=0
//
// Clean counterpart of bad_simd_intrinsics.cc: the same raw vector forms
// (header include, NEON types and calls, __builtin_prefetch) are fine
// inside the kernel layer, where a scalar:: twin and the differential test
// cover them.  Intrinsic names in comments must not fire either, e.g.
// _mm256_add_pd(acc, x) or #include <immintrin.h>.
#include <arm_neon.h>
#include <cstddef>

namespace ujoin {
namespace simd {

namespace scalar {
inline double LaneSum(const double* a, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i];
  return s;
}
}  // namespace scalar

namespace detail {
inline double LaneSumNeon(const double* a, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_f64(acc, vld1q_f64(a + i));
  double s = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) s += a[i];
  return s;
}
}  // namespace detail

inline double LaneSum(const double* a, std::size_t n) {
  __builtin_prefetch(a);
  if (n >= 2) return detail::LaneSumNeon(a, n);
  return scalar::LaneSum(a, n);
}

}  // namespace simd
}  // namespace ujoin
