// ujoin-lint-fixture: as=src/util/simd_widen.h rule=simd-dispatch-fallback expect=0
//
// Clean counterpart of bad_simd_dispatch.cc: the vector variant has its
// scalar::WidenSum twin, and the dispatch entry falls back to it — the
// shape every kernel in util/simd.h follows.  Calls to detail::*Avx2 from
// the dispatch entry are not definitions and must not fire on their own.
#include <immintrin.h>
#include <cstddef>

namespace ujoin {
namespace simd {

namespace scalar {
inline double WidenSum(const double* a, std::size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) s[i & 3] += a[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}
}  // namespace scalar

namespace detail {
__attribute__((target("avx2"))) inline double WidenSumAvx2(
    const double* a, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  double s[4];
  _mm256_storeu_pd(s, acc);
  for (; i < n; ++i) s[i & 3] += a[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}
}  // namespace detail

inline double WidenSum(const double* a, std::size_t n) {
  if (n >= 4) return detail::WidenSumAvx2(a, n);  // call, not a definition
  return scalar::WidenSum(a, n);
}

}  // namespace simd
}  // namespace ujoin
