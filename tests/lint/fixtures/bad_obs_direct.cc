// ujoin-lint-fixture: as=src/join/self_join.cc rule=obs-macro-only expect=3
//
// Seeded violations: worker code recording metrics by calling the Recorder
// directly.  These sites lose the null-recorder guard and keep running
// when -DUJOIN_OBS=OFF is supposed to compile instrumentation out.
namespace ujoin {

namespace obs {
enum class Hist : int { kProbeLatencyNs };
enum class Counter : int { kProbes };
enum class Gauge : int { kThreads };
class Recorder {
 public:
  void RecordHist(Hist h, long value);
  void AddCounter(Counter c, long delta);
  void SetGauge(Gauge g, long value);
};
}  // namespace obs

void ProbeOnce(obs::Recorder* rec, long elapsed_ns) {
  rec->RecordHist(obs::Hist::kProbeLatencyNs, elapsed_ns);  // violation
  rec->AddCounter(obs::Counter::kProbes, 1);                // violation
}

void Configure(obs::Recorder& rec, long threads) {
  rec.SetGauge(obs::Gauge::kThreads, threads);  // violation
}

}  // namespace ujoin
